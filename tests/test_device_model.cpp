// Tests for the P100 device model and vendor performance envelope.
#include <gtest/gtest.h>

#include "base/exception.hpp"
#include "simt/device_model.hpp"

namespace vbatch::simt {
namespace {

KernelStats sample_stats(size_type warps) {
    KernelStats s;
    s.fp_instructions = 500 * warps;
    s.shuffle_instructions = 500 * warps;
    s.misc_instructions = 100 * warps;
    s.div_instructions = 30 * warps;
    s.load_transactions = 256 * warps;
    s.store_transactions = 256 * warps;
    s.load_requests = 32 * warps;
    s.store_requests = 32 * warps;
    s.useful_flops = 20000 * warps;
    return s;
}

TEST(DeviceModel, DoublePrecisionIsSlower) {
    const auto model = DeviceModel::p100();
    const auto fp = register_kernel_footprint(32, Precision::dp);
    const auto fp_sp = register_kernel_footprint(32, Precision::single);
    const auto stats = sample_stats(10000);
    const double t_dp =
        model.estimate_seconds(stats, 10000, Precision::dp, fp);
    const double t_sp =
        model.estimate_seconds(stats, 10000, Precision::single, fp_sp);
    EXPECT_GE(t_dp, t_sp);
}

TEST(DeviceModel, TimeIncreasesWithWork) {
    const auto model = DeviceModel::p100();
    const auto fp = register_kernel_footprint(32, Precision::dp);
    const double t1 = model.estimate_seconds(sample_stats(1000), 1000,
                                             Precision::dp, fp);
    const double t2 = model.estimate_seconds(sample_stats(40000), 40000,
                                             Precision::dp, fp);
    EXPECT_GT(t2, t1);
}

TEST(DeviceModel, ThroughputRampsWithBatchSize) {
    // GFLOPS(batch) must grow toward a plateau (Fig. 4/6 shape): the
    // per-launch overhead dominates small batches.
    const auto model = DeviceModel::p100();
    const auto fp = register_kernel_footprint(32, Precision::dp);
    double prev = 0.0;
    for (const size_type batch : {500, 2000, 8000, 40000}) {
        const auto stats = sample_stats(batch);
        const double t =
            model.estimate_seconds(stats, batch, Precision::dp, fp);
        const double gflops =
            static_cast<double>(stats.useful_flops) / t * 1e-9;
        EXPECT_GT(gflops, prev);
        prev = gflops;
    }
}

TEST(DeviceModel, RegisterFootprintLimitsOccupancy) {
    const auto model = DeviceModel::p100();
    const auto small = register_kernel_footprint(8, Precision::single);
    const auto large = register_kernel_footprint(32, Precision::dp);
    EXPECT_GT(model.resident_warps(small), model.resident_warps(large));
    EXPECT_LE(model.resident_warps(large),
              static_cast<size_type>(model.num_sms) *
                  model.max_warps_per_sm);
    EXPECT_GE(model.resident_warps(large), model.num_sms);
}

TEST(DeviceModel, MemoryBoundKernelScalesWithBytes) {
    const auto model = DeviceModel::p100();
    const auto fp = register_kernel_footprint(32, Precision::dp);
    auto s = sample_stats(20000);
    const double t1 = model.estimate_seconds(s, 20000, Precision::dp, fp);
    s.load_transactions *= 8;  // 8x the traffic
    const double t2 = model.estimate_seconds(s, 20000, Precision::dp, fp);
    EXPECT_GT(t2, 1.5 * t1);
}

TEST(DeviceModel, EmptyLaunchRejected) {
    const auto model = DeviceModel::p100();
    const auto fp = register_kernel_footprint(16, Precision::dp);
    EXPECT_THROW(
        model.estimate_seconds(KernelStats{}, 0, Precision::dp, fp),
        vbatch::BadParameter);
}

TEST(VendorModel, TablesShowTunedPeaks) {
    const auto device = DeviceModel::p100();
    const VendorModel vendor(device);
    // Single precision getrf: local peaks at 8, 16 and 29.
    EXPECT_GT(vendor.getrf_gflops(8, Precision::single),
              vendor.getrf_gflops(9, Precision::single));
    EXPECT_GT(vendor.getrf_gflops(16, Precision::single),
              vendor.getrf_gflops(17, Precision::single));
    EXPECT_GT(vendor.getrf_gflops(29, Precision::single),
              vendor.getrf_gflops(30, Precision::single));
    // Double precision: peaks at 8 and 20.
    EXPECT_GT(vendor.getrf_gflops(8, Precision::dp),
              vendor.getrf_gflops(9, Precision::dp));
    EXPECT_GT(vendor.getrf_gflops(20, Precision::dp),
              vendor.getrf_gflops(21, Precision::dp));
    // Roughly 100 GFLOPS at m = 32 in double precision (paper: "about 100").
    EXPECT_NEAR(vendor.getrf_gflops(32, Precision::dp), 100.0, 15.0);
}

TEST(VendorModel, GetrsSlowerThanGetrf) {
    const auto device = DeviceModel::p100();
    const VendorModel vendor(device);
    for (index_type m = 4; m <= 32; ++m) {
        EXPECT_LT(vendor.getrs_gflops(m, Precision::dp),
                  vendor.getrf_gflops(m, Precision::dp));
    }
}

TEST(VendorModel, EstimateHonoursRampAndThroughput) {
    const auto device = DeviceModel::p100();
    const VendorModel vendor(device);
    const double g = vendor.getrf_gflops(32, Precision::dp);
    const double flops_per = 2.0 / 3 * 32 * 32 * 32;
    const double t_small = vendor.estimate_seconds(flops_per * 100, g, 100);
    const double t_large =
        vendor.estimate_seconds(flops_per * 40000, g, 40000);
    const double g_small = flops_per * 100 / t_small * 1e-9;
    const double g_large = flops_per * 40000 / t_large * 1e-9;
    EXPECT_LT(g_small, g_large);
    EXPECT_NEAR(g_large, g, 0.25 * g);
}

TEST(WarpFootprint, ScalesWithPrecisionAndSize) {
    const auto sp = register_kernel_footprint(32, Precision::single);
    const auto dp = register_kernel_footprint(32, Precision::dp);
    EXPECT_GT(dp.registers_per_lane, sp.registers_per_lane);
    const auto small = register_kernel_footprint(8, Precision::dp);
    EXPECT_EQ(small.registers_per_lane, dp.registers_per_lane)
        << "padded kernels hold the full 32-wide row regardless of m";
}

}  // namespace
}  // namespace vbatch::simt
