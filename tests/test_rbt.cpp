// Tests for the pivoting-free fast path: butterfly scheme and scalar
// transforms (core/rbt.hpp), and the PivotScheme::rbt integration of the
// block-Jacobi lu / lu_simd backends -- solve equivalence against the
// pivoted reference, bitwise scalar==SIMD agreement, seed determinism,
// and the degeneracy monitor + pivoted fallback under adversarial
// (graded near-singular) injection. Registered once per VBATCH_SIMD
// level via vbatch_add_simd_matrix_test.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <span>
#include <vector>

#include "base/exception.hpp"
#include "blas/dense_matrix.hpp"
#include "blas/lapack.hpp"
#include "blocking/extraction.hpp"
#include "blocking/supervariable.hpp"
#include "core/rbt.hpp"
#include "precond/block_jacobi.hpp"
#include "sparse/generators.hpp"

namespace vbatch {
namespace {

// --- the pure scheme layer -------------------------------------------------

TEST(RbtScheme, SegmentsPartitionEveryLevel) {
    for (const index_type n : {1, 2, 3, 5, 7, 12, 16, 31, 32}) {
        for (index_type level = 0; level <= core::rbt::max_rbt_depth;
             ++level) {
            std::vector<int> covered(static_cast<std::size_t>(n), 0);
            index_type expected_lo = 0;
            core::rbt::for_each_segment(
                n, level, [&](index_type lo, index_type len) {
                    EXPECT_EQ(lo, expected_lo) << "n=" << n << " level="
                                               << level;
                    EXPECT_GE(len, 1);
                    for (index_type i = lo; i < lo + len; ++i) {
                        ++covered[static_cast<std::size_t>(i)];
                    }
                    expected_lo = lo + len;
                });
            EXPECT_EQ(expected_lo, n);
            for (const int c : covered) {
                EXPECT_EQ(c, 1);
            }
        }
    }
}

TEST(RbtScheme, CoefficientsArePureFunctions) {
    const auto a = core::rbt::rbt_coefficient<double>(42, 3, 0, 1, 5, true);
    const auto b = core::rbt::rbt_coefficient<double>(42, 3, 0, 1, 5, true);
    EXPECT_EQ(a, b);
    // Every coordinate participates in the key.
    EXPECT_NE(a, core::rbt::rbt_coefficient<double>(43, 3, 0, 1, 5, true));
    EXPECT_NE(a, core::rbt::rbt_coefficient<double>(42, 4, 0, 1, 5, true));
    EXPECT_NE(a, core::rbt::rbt_coefficient<double>(42, 3, 1, 1, 5, true));
    EXPECT_NE(a, core::rbt::rbt_coefficient<double>(42, 3, 0, 2, 5, true));
    EXPECT_NE(a, core::rbt::rbt_coefficient<double>(42, 3, 0, 1, 6, true));
    // Coefficients stay close to 1 (e^{rho/10}, |rho| < 1), scaled by
    // 1/sqrt(2) when paired.
    const double f = a * std::sqrt(2.0);
    EXPECT_GT(f, std::exp(-0.1));
    EXPECT_LT(f, std::exp(0.1));
}

// Materialize the side-`side` butterfly of `block` as a dense m x m
// matrix by pushing unit vectors through the scalar vector transforms:
// forward() applies U^T, backward() applies V.
template <typename Apply>
DenseMatrix<double> materialize(index_type m, Apply&& apply) {
    DenseMatrix<double> w(m, m);
    std::vector<double> e(static_cast<std::size_t>(m));
    for (index_type j = 0; j < m; ++j) {
        std::fill(e.begin(), e.end(), 0.0);
        e[static_cast<std::size_t>(j)] = 1.0;
        apply(std::span<double>(e));
        for (index_type i = 0; i < m; ++i) {
            w(i, j) = e[static_cast<std::size_t>(i)];
        }
    }
    return w;
}

TEST(RbtTransforms, Depth1ButterflyHasOrthogonalColumns) {
    // A single butterfly level has exactly orthogonal (not orthonormal)
    // columns; deeper recursions lose this, so the property is only
    // asserted at depth 1.
    const core::RbtTransforms<double> rbt(/*seed=*/7, /*depth=*/1);
    for (const index_type m : {2, 3, 5, 8, 16, 31, 32}) {
        const auto v = materialize(m, [&](std::span<double> x) {
            rbt.backward(/*block=*/11, x);
        });
        for (index_type i = 0; i < m; ++i) {
            for (index_type j = i + 1; j < m; ++j) {
                double dot = 0.0;
                for (index_type k = 0; k < m; ++k) {
                    dot += v(k, i) * v(k, j);
                }
                EXPECT_NEAR(dot, 0.0, 1e-14) << "m=" << m << " (" << i
                                             << "," << j << ")";
            }
        }
    }
}

TEST(RbtTransforms, TransformBlockMatchesMaterializedProduct) {
    // transform_block must equal the dense product U^T A V of the
    // materialized butterflies (up to roundoff; the in-place pass uses a
    // different operation order than the triple loop).
    const core::RbtTransforms<double> rbt(/*seed=*/42, /*depth=*/2);
    for (const index_type m : {1, 2, 3, 6, 7}) {
        const size_type block = 5;
        const auto ut = materialize(m, [&](std::span<double> x) {
            rbt.forward(block, x);
        });
        const auto v = materialize(m, [&](std::span<double> x) {
            rbt.backward(block, x);
        });
        const auto layout = core::make_uniform_layout(1, m);
        core::BatchedMatrices<double> mats(layout);
        auto a = mats.view(0);
        for (index_type i = 0; i < m; ++i) {
            for (index_type j = 0; j < m; ++j) {
                a(i, j) = std::sin(1.0 + 0.7 * i + 1.3 * j);
            }
        }
        DenseMatrix<double> ref(m, m);
        for (index_type i = 0; i < m; ++i) {
            for (index_type j = 0; j < m; ++j) {
                double sum = 0.0;
                for (index_type k = 0; k < m; ++k) {
                    for (index_type l = 0; l < m; ++l) {
                        sum += ut(i, k) * a(k, l) * v(l, j);
                    }
                }
                ref(i, j) = sum;
            }
        }
        rbt.transform_block(block, a);
        for (index_type i = 0; i < m; ++i) {
            for (index_type j = 0; j < m; ++j) {
                EXPECT_NEAR(a(i, j), ref(i, j), 1e-12)
                    << "m=" << m << " (" << i << "," << j << ")";
            }
        }
    }
}

TEST(RbtTransforms, ForwardBackwardRoundTripThroughDenseSolve) {
    // Solving (U^T A V) y = U^T b and returning V y must reproduce the
    // solution of A x = b: the full fast-path algebra on one block.
    const index_type m = 12;
    const core::RbtTransforms<double> rbt(/*seed=*/1, /*depth=*/2);
    const auto layout = core::make_uniform_layout(1, m);
    core::BatchedMatrices<double> mats(layout);
    auto a = mats.view(0);
    DenseMatrix<double> plain(m, m);
    for (index_type i = 0; i < m; ++i) {
        for (index_type j = 0; j < m; ++j) {
            a(i, j) = (i == j ? 4.0 : 0.0) + std::cos(0.9 * i - 0.4 * j);
            plain(i, j) = a(i, j);
        }
    }
    std::vector<double> b(static_cast<std::size_t>(m));
    for (index_type i = 0; i < m; ++i) {
        b[static_cast<std::size_t>(i)] = 1.0 + 0.1 * i;
    }
    std::vector<double> ref = b;
    ASSERT_EQ(lapack::gesv<double>(plain.view(),
                                         std::span<double>(ref)),
              0);

    rbt.transform_block(0, a);
    DenseMatrix<double> transformed(m, m);
    for (index_type i = 0; i < m; ++i) {
        for (index_type j = 0; j < m; ++j) {
            transformed(i, j) = a(i, j);
        }
    }
    std::vector<double> x = b;
    rbt.forward(0, std::span<double>(x));
    ASSERT_EQ(lapack::gesv<double>(transformed.view(),
                                         std::span<double>(x)),
              0);
    rbt.backward(0, std::span<double>(x));
    for (index_type i = 0; i < m; ++i) {
        EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                    ref[static_cast<std::size_t>(i)], 1e-10);
    }
}

TEST(RbtTransforms, DepthIsClampedToSchemeBound) {
    const core::RbtTransforms<double> low(1, 0);
    EXPECT_EQ(low.depth(), 1);
    const core::RbtTransforms<double> high(1, 99);
    EXPECT_EQ(high.depth(), core::rbt::max_rbt_depth);
}

TEST(RbtTransforms, DefaultSeedReadsEnvironment) {
    ASSERT_EQ(setenv("VBATCH_RBT_SEED", "777", 1), 0);
    EXPECT_EQ(core::default_rbt_seed(), 777u);
    ASSERT_EQ(setenv("VBATCH_RBT_SEED", "12abc", 1), 0);
    EXPECT_EQ(core::default_rbt_seed(), 42u);  // trailing garbage -> default
    ASSERT_EQ(unsetenv("VBATCH_RBT_SEED"), 0);
    EXPECT_EQ(core::default_rbt_seed(), 42u);
}

// --- block-Jacobi integration ----------------------------------------------

std::vector<double> rhs(index_type n) {
    std::vector<double> r(static_cast<std::size_t>(n));
    for (index_type i = 0; i < n; ++i) {
        r[static_cast<std::size_t>(i)] =
            std::sin(0.1 * static_cast<double>(i)) + 0.5;
    }
    return r;
}

TEST(BlockJacobiRbt, SolveMatchesPivotedWithinTolerance) {
    const auto a = sparse::laplacian_2d<double>(6, 6, 4);
    const auto n = a.num_rows();
    const auto r = rhs(n);

    precond::BlockJacobiOptions implicit_opts;
    implicit_opts.backend = precond::BlockJacobiBackend::lu;
    implicit_opts.max_block_size = 16;
    precond::BlockJacobi<double> pivoted(a, implicit_opts);
    std::vector<double> z_ref(r.size());
    pivoted.apply(std::span<const double>(r), std::span<double>(z_ref));

    auto rbt_opts = implicit_opts;
    rbt_opts.pivot = precond::PivotScheme::rbt;
    precond::BlockJacobi<double> fast(a, rbt_opts);
    EXPECT_EQ(fast.name(), "block-jacobi(lu+rbt,16)");
    // Benign blocks: nothing leaves the fast path.
    EXPECT_EQ(fast.rbt_fellback(), 0);
    EXPECT_EQ(fast.recovery_summary().ok, fast.num_blocks());
    for (size_type b = 0; b < fast.num_blocks(); ++b) {
        EXPECT_TRUE(fast.rbt_applied(b));
    }

    std::vector<double> z(r.size());
    fast.apply(std::span<const double>(r), std::span<double>(z));
    for (std::size_t i = 0; i < z.size(); ++i) {
        EXPECT_NEAR(z[i], z_ref[i], 1e-9) << "row " << i;
    }
}

TEST(BlockJacobiRbt, SimdBackendMatchesScalarBitwise) {
    const auto a = sparse::fem_block_matrix<double>(60, 4, 12, 2, 0.2, 29);
    const auto n = a.num_rows();
    const auto r = rhs(n);

    precond::BlockJacobiOptions lu_opts;
    lu_opts.backend = precond::BlockJacobiBackend::lu;
    lu_opts.pivot = precond::PivotScheme::rbt;
    precond::BlockJacobi<double> lu(a, lu_opts);
    std::vector<double> z_lu(r.size());
    lu.apply(std::span<const double>(r), std::span<double>(z_lu));

    for (const auto isa : core::available_simd_isas()) {
        precond::BlockJacobiOptions simd_opts = lu_opts;
        simd_opts.backend = precond::BlockJacobiBackend::lu_simd;
        simd_opts.simd = isa;
        precond::BlockJacobi<double> simd(a, simd_opts);
        // The scalar driver mirrors the chunk kernels op for op, so the
        // transformed pivot-free factors agree bitwise...
        ASSERT_EQ(simd.factors().count(), lu.factors().count());
        for (size_type b = 0; b < lu.factors().count(); ++b) {
            const auto va = lu.factors().view(b);
            const auto vb = simd.factors().view(b);
            for (index_type c = 0; c < va.cols(); ++c) {
                for (index_type rr = 0; rr < va.rows(); ++rr) {
                    ASSERT_EQ(va(rr, c), vb(rr, c))
                        << core::simd_isa_name(isa) << " block " << b;
                }
            }
            ASSERT_EQ(simd.rbt_applied(b), lu.rbt_applied(b));
        }
        EXPECT_EQ(simd.rbt_monitored(), lu.rbt_monitored());
        EXPECT_EQ(simd.rbt_fellback(), lu.rbt_fellback());
        // ...and so does the application.
        std::vector<double> z_simd(r.size());
        simd.apply(std::span<const double>(r), std::span<double>(z_simd));
        for (std::size_t i = 0; i < z_simd.size(); ++i) {
            ASSERT_EQ(z_lu[i], z_simd[i])
                << core::simd_isa_name(isa) << " row " << i;
        }
    }
}

TEST(BlockJacobiRbt, SeedDeterminismAndVariation) {
    const auto a = sparse::laplacian_2d<double>(8, 8, 4);
    const auto r = rhs(a.num_rows());

    precond::BlockJacobiOptions opts;
    opts.backend = precond::BlockJacobiBackend::lu_simd;
    opts.pivot = precond::PivotScheme::rbt;
    opts.rbt_seed = 1234;
    precond::BlockJacobi<double> first(a, opts);
    precond::BlockJacobi<double> second(a, opts);
    std::vector<double> z1(r.size()), z2(r.size());
    first.apply(std::span<const double>(r), std::span<double>(z1));
    second.apply(std::span<const double>(r), std::span<double>(z2));
    for (size_type b = 0; b < first.factors().count(); ++b) {
        const auto va = first.factors().view(b);
        const auto vb = second.factors().view(b);
        for (index_type c = 0; c < va.cols(); ++c) {
            for (index_type rr = 0; rr < va.rows(); ++rr) {
                ASSERT_EQ(va(rr, c), vb(rr, c));
            }
        }
    }
    EXPECT_EQ(z1, z2);

    // A different seed draws different butterflies (different factor
    // bits) but an equally valid preconditioner.
    opts.rbt_seed = 99;
    precond::BlockJacobi<double> other(a, opts);
    bool any_diff = false;
    for (size_type b = 0; !any_diff && b < first.factors().count(); ++b) {
        const auto va = first.factors().view(b);
        const auto vb = other.factors().view(b);
        for (index_type c = 0; !any_diff && c < va.cols(); ++c) {
            for (index_type rr = 0; rr < va.rows(); ++rr) {
                if (va(rr, c) != vb(rr, c)) {
                    any_diff = true;
                    break;
                }
            }
        }
    }
    EXPECT_TRUE(any_diff);
    std::vector<double> z3(r.size());
    other.apply(std::span<const double>(r), std::span<double>(z3));
    for (std::size_t i = 0; i < z3.size(); ++i) {
        EXPECT_NEAR(z3[i], z1[i], 1e-8);
    }
}

TEST(BlockJacobiRbt, RefreshReproducesBitwise) {
    const auto a = sparse::fem_block_matrix<double>(40, 4, 10, 2, 0.2, 31);
    const auto r = rhs(a.num_rows());
    precond::BlockJacobiOptions opts;
    opts.backend = precond::BlockJacobiBackend::lu_simd;
    opts.pivot = precond::PivotScheme::rbt;
    precond::BlockJacobi<double> prec(a, opts);
    std::vector<double> z1(r.size());
    prec.apply(std::span<const double>(r), std::span<double>(z1));
    const auto fellback = prec.rbt_fellback();

    prec.refresh(a);
    std::vector<double> z2(r.size());
    prec.apply(std::span<const double>(r), std::span<double>(z2));
    EXPECT_EQ(z1, z2);
    EXPECT_EQ(prec.rbt_fellback(), fellback);
}

TEST(BlockJacobiRbt, IllcondInjectionFallsBackToPivotedFactors) {
    auto a = sparse::laplacian_2d<double>(16, 16, 4);
    const auto layout = blocking::supervariable_layout(
        a, blocking::BlockingOptions{.max_block_size = 16});
    const size_type injected =
        blocking::make_blocks_singular(a, *layout, 0);  // none; keep helper hot
    (void)injected;
    const size_type graded =
        blocking::make_blocks_illcond(a, *layout, 4);
    ASSERT_EQ(graded, 4);

    // The pivoted reference keeps the graded blocks (their pivots sit
    // above the implicit-path eps^2 tolerance)...
    precond::BlockJacobiOptions implicit_opts;
    implicit_opts.backend = precond::BlockJacobiBackend::lu;
    implicit_opts.max_block_size = 16;
    implicit_opts.layout = layout;
    precond::BlockJacobi<double> pivoted(a, implicit_opts);
    EXPECT_EQ(pivoted.recovery_summary().ok, pivoted.num_blocks());

    // ...while the fast path's eps-scale monitor must flag them, fall
    // back to pivoted refactorization, and recover every one: zero
    // un-recovered degraded blocks.
    auto rbt_opts = implicit_opts;
    rbt_opts.pivot = precond::PivotScheme::rbt;
    precond::BlockJacobi<double> fast(a, rbt_opts);
    EXPECT_GE(fast.rbt_monitored(), graded);
    EXPECT_GE(fast.rbt_fellback(), graded);
    EXPECT_EQ(fast.rbt_monitored(), fast.rbt_fellback());
    const auto summary = fast.recovery_summary();
    EXPECT_EQ(summary.fell_back, 0);
    EXPECT_EQ(summary.singular, 0);
    EXPECT_EQ(summary.ok + summary.boosted, fast.num_blocks());
    const auto nb = fast.num_blocks();
    for (size_type k = 0; k < graded; ++k) {
        EXPECT_FALSE(fast.rbt_applied(k * nb / graded)) << "block " << k;
    }

    // The recovered blocks hold exactly the pivoted path's factors and
    // solve through the same scalar kernel, so their rows of the
    // application agree bitwise with the pivoted reference; every row is
    // finite.
    const auto r = rhs(a.num_rows());
    std::vector<double> z_ref(r.size()), z(r.size());
    pivoted.apply(std::span<const double>(r), std::span<double>(z_ref));
    fast.apply(std::span<const double>(r), std::span<double>(z));
    for (std::size_t i = 0; i < z.size(); ++i) {
        ASSERT_TRUE(std::isfinite(z[i])) << "row " << i;
    }
    for (size_type k = 0; k < graded; ++k) {
        const auto b = k * nb / graded;
        const auto r0 = fast.layout().row_offset(b);
        const index_type m = fast.layout().size(b);
        for (index_type i = 0; i < m; ++i) {
            ASSERT_EQ(z[r0 + static_cast<std::size_t>(i)],
                      z_ref[r0 + static_cast<std::size_t>(i)])
                << "block " << b << " row " << i;
        }
    }

    // End state is bitwise reproducible across a fresh identical setup.
    precond::BlockJacobi<double> again(a, rbt_opts);
    std::vector<double> z_again(r.size());
    again.apply(std::span<const double>(r), std::span<double>(z_again));
    EXPECT_EQ(z, z_again);
    EXPECT_EQ(again.rbt_fellback(), fast.rbt_fellback());
}

TEST(BlockJacobiRbt, SingularInjectionDegradesLikePivotedPath) {
    auto a = sparse::laplacian_2d<double>(12, 12, 4);
    const auto layout = blocking::supervariable_layout(
        a, blocking::BlockingOptions{.max_block_size = 16});
    const size_type zeroed = blocking::make_blocks_singular(a, *layout, 2);
    ASSERT_EQ(zeroed, 2);

    precond::BlockJacobiOptions opts;
    opts.backend = precond::BlockJacobiBackend::lu_simd;
    opts.max_block_size = 16;
    opts.layout = layout;
    opts.pivot = precond::PivotScheme::rbt;
    precond::BlockJacobi<double> fast(a, opts);
    const auto summary = fast.recovery_summary();
    EXPECT_EQ(summary.fell_back + summary.singular, zeroed);
    EXPECT_EQ(summary.ok, fast.num_blocks() - zeroed);

    const auto r = rhs(a.num_rows());
    std::vector<double> z(r.size());
    fast.apply(std::span<const double>(r), std::span<double>(z));
    for (const double v : z) {
        EXPECT_TRUE(std::isfinite(v));
    }
}

TEST(BlockJacobiRbt, FloatPathSolvesWithinPrecisionTolerance) {
    const auto a = sparse::laplacian_2d<float>(6, 6, 4);
    const auto n = a.num_rows();
    std::vector<float> r(static_cast<std::size_t>(n));
    for (index_type i = 0; i < n; ++i) {
        r[static_cast<std::size_t>(i)] =
            std::sin(0.1f * static_cast<float>(i)) + 0.5f;
    }
    precond::BlockJacobiOptions opts;
    opts.backend = precond::BlockJacobiBackend::lu_simd;
    opts.max_block_size = 16;
    precond::BlockJacobi<float> pivoted(a, opts);
    opts.pivot = precond::PivotScheme::rbt;
    precond::BlockJacobi<float> fast(a, opts);
    EXPECT_EQ(fast.rbt_fellback(), 0);
    std::vector<float> z_ref(r.size()), z(r.size());
    pivoted.apply(std::span<const float>(r), std::span<float>(z_ref));
    fast.apply(std::span<const float>(r), std::span<float>(z));
    for (std::size_t i = 0; i < z.size(); ++i) {
        EXPECT_NEAR(z[i], z_ref[i], 1e-4f) << "row " << i;
    }
}

TEST(BlockJacobiRbt, RejectsStrictRecoveryAndNonLuBackends) {
    const auto a = sparse::laplacian_2d<double>(4, 4, 4);
    precond::BlockJacobiOptions opts;
    opts.backend = precond::BlockJacobiBackend::lu;
    opts.pivot = precond::PivotScheme::rbt;
    opts.recovery = precond::RecoveryPolicy::strict();
    EXPECT_THROW((precond::BlockJacobi<double>(a, opts)), BadParameter);

    opts.recovery = {};
    opts.backend = precond::BlockJacobiBackend::gauss_huard;
    EXPECT_THROW((precond::BlockJacobi<double>(a, opts)), BadParameter);
}

}  // namespace
}  // namespace vbatch
