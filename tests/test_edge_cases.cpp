// Edge-case and float-precision coverage across the stack: restart
// boundaries, breakdown paths, on-disk I/O, and the float instantiations
// the rest of the suite exercises only lightly.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <vector>

#include "base/exception.hpp"
#include "blas/blas1.hpp"
#include "blas/blas2.hpp"
#include "core/getrf.hpp"
#include "core/trsv.hpp"
#include "precond/block_jacobi.hpp"
#include "precond/scalar_jacobi.hpp"
#include "solvers/bicgstab.hpp"
#include "solvers/cg.hpp"
#include "solvers/gmres.hpp"
#include "solvers/idr.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix_market.hpp"

namespace vbatch {
namespace {

TEST(FloatPath, BatchedLuSolvesInSinglePrecision) {
    auto batch = core::BatchedMatrices<float>::random_diagonally_dominant(
        core::make_layout({3, 9, 16, 32}), 4);
    auto original = batch.clone();
    core::BatchedPivots perm(batch.layout_ptr());
    ASSERT_TRUE(core::getrf_batch(batch, perm).ok());
    auto b = core::BatchedVectors<float>::ones(batch.layout_ptr());
    core::getrs_batch(batch, perm, b);
    for (size_type i = 0; i < batch.count(); ++i) {
        const auto m = batch.layout().size(i);
        std::vector<float> back(static_cast<std::size_t>(m), 0.0f);
        blas::gemv(1.0f, original.view(i),
                   std::span<const float>(b.span(i)), 0.0f,
                   std::span<float>(back));
        for (index_type k = 0; k < m; ++k) {
            EXPECT_NEAR(back[static_cast<std::size_t>(k)], 1.0f, 1e-3f);
        }
    }
}

TEST(FloatPath, BlockJacobiIdrConverges) {
    const auto a = sparse::laplacian_2d<float>(16, 16, 2, 7);
    precond::BlockJacobiOptions opts;
    opts.max_block_size = 8;
    precond::BlockJacobi<float> prec(a, opts);
    std::vector<float> b(static_cast<std::size_t>(a.num_rows()), 1.0f);
    std::vector<float> x(b.size(), 0.0f);
    solvers::IdrOptions so;
    so.rel_tol = 1e-4;  // single precision headroom
    const auto r = solvers::idr(a, std::span<const float>(b),
                                std::span<float>(x), prec, so);
    EXPECT_TRUE(r.converged());
}

TEST(Gmres, RestartBoundaryExactlyHitsSolution) {
    // restart = 1 degenerates to steepest-descent-like steps but must
    // still make progress and terminate cleanly.
    const auto a = sparse::laplacian_2d<double>(8, 8, 1);
    std::vector<double> b(static_cast<std::size_t>(a.num_rows()), 1.0);
    std::vector<double> x(b.size(), 0.0);
    precond::ScalarJacobi<double> prec(a);
    solvers::GmresOptions opts;
    opts.restart = 1;
    opts.max_iters = 5000;
    const auto r = solvers::gmres(a, std::span<const double>(b),
                                  std::span<double>(x), prec, opts);
    EXPECT_TRUE(r.converged() || r.iterations == 5000);
    if (r.converged()) {
        EXPECT_LT(r.relative_residual(), 1e-6);
    }
}

TEST(Gmres, RestartLargerThanIterationBudget) {
    const auto a = sparse::laplacian_2d<double>(10, 10, 1);
    std::vector<double> b(static_cast<std::size_t>(a.num_rows()), 1.0);
    std::vector<double> x(b.size(), 0.0);
    precond::IdentityPreconditioner<double> prec;
    solvers::GmresOptions opts;
    opts.restart = 500;
    opts.max_iters = 10;
    const auto r = solvers::gmres(a, std::span<const double>(b),
                                  std::span<double>(x), prec, opts);
    EXPECT_LE(r.iterations, 10);
}

TEST(Bicgstab, ImmediateConvergenceOnExactGuess) {
    const auto a = sparse::laplacian_2d<double>(6, 6, 1);
    const auto n = static_cast<std::size_t>(a.num_rows());
    std::vector<double> x_ref(n, 2.0);
    std::vector<double> b(n);
    a.spmv(std::span<const double>(x_ref), std::span<double>(b));
    auto x = x_ref;  // exact initial guess
    precond::IdentityPreconditioner<double> prec;
    const auto r = solvers::bicgstab(a, std::span<const double>(b),
                                     std::span<double>(x), prec);
    EXPECT_TRUE(r.converged());
    EXPECT_EQ(r.iterations, 0);
}

TEST(Cg, BreaksDownGracefullyOnIndefiniteSystem) {
    // CG requires SPD; on an indefinite matrix it must either converge by
    // luck, exhaust the budget, or flag a breakdown -- never crash or
    // report a false converged state.
    auto a = sparse::Csr<double>::from_triplets(
        2, 2, {{0, 0, 1.0}, {1, 1, -1.0}});
    std::vector<double> b{1.0, 1.0};
    std::vector<double> x(2, 0.0);
    precond::IdentityPreconditioner<double> prec;
    solvers::SolverOptions opts;
    opts.max_iters = 50;
    const auto r = solvers::cg(a, std::span<const double>(b),
                               std::span<double>(x), prec, opts);
    if (r.converged()) {
        std::vector<double> t(2);
        a.spmv(std::span<const double>(x), std::span<double>(t));
        EXPECT_NEAR(t[0], b[0], 1e-6);
        EXPECT_NEAR(t[1], b[1], 1e-6);
    }
}

TEST(MatrixMarket, OnDiskRoundTrip) {
    const auto path =
        (std::filesystem::temp_directory_path() / "vbatch_mm_test.mtx")
            .string();
    const auto a = sparse::random_banded<double>(40, 3, 1.0, 11);
    sparse::write_matrix_market_file(path, a);
    const auto b = sparse::read_matrix_market_file<double>(path);
    ASSERT_EQ(b.nnz(), a.nnz());
    for (index_type i = 0; i < a.num_rows(); i += 7) {
        for (index_type j = 0; j < a.num_cols(); j += 5) {
            EXPECT_DOUBLE_EQ(b.at(i, j), a.at(i, j));
        }
    }
    std::filesystem::remove(path);
}

TEST(Idr, LargerShadowSpaceWorks) {
    const auto a = sparse::convection_diffusion_2d<double>(15, 15, 1, 25.0);
    std::vector<double> b(static_cast<std::size_t>(a.num_rows()), 1.0);
    std::vector<double> x(b.size(), 0.0);
    precond::IdentityPreconditioner<double> prec;
    solvers::IdrOptions opts;
    opts.s = 8;
    const auto r = solvers::idr(a, std::span<const double>(b),
                                std::span<double>(x), prec, opts);
    EXPECT_TRUE(r.converged());
}

TEST(BlockJacobi, SizeOneBlocksEqualScalarJacobi) {
    const auto a = sparse::laplacian_2d<double>(8, 8, 1, 9);
    precond::BlockJacobiOptions opts;
    opts.max_block_size = 1;
    precond::BlockJacobi<double> bj(a, opts);
    precond::ScalarJacobi<double> sj(a);
    const auto n = static_cast<std::size_t>(a.num_rows());
    std::vector<double> r(n, 3.0), z1(n), z2(n);
    bj.apply(std::span<const double>(r), std::span<double>(z1));
    sj.apply(std::span<const double>(r), std::span<double>(z2));
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(z1[i], z2[i], 1e-15);
    }
}

TEST(Getrf, Full32SizeBatchStress) {
    // A larger stress batch at the maximum block size.
    auto batch = core::BatchedMatrices<double>::random_general(
        core::make_uniform_layout(256, 32), 99);
    auto original = batch.clone();
    core::BatchedPivots perm(batch.layout_ptr());
    ASSERT_TRUE(core::getrf_batch(batch, perm).ok());
    auto x = core::BatchedVectors<double>::random(batch.layout_ptr(), 3);
    auto b = core::BatchedVectors<double>(batch.layout_ptr());
    for (size_type i = 0; i < batch.count(); ++i) {
        blas::gemv(1.0, original.view(i),
                   std::span<const double>(x.span(i)), 0.0, b.span(i));
    }
    core::getrs_batch(batch, perm, b);
    double max_err = 0;
    for (size_type i = 0; i < batch.count(); ++i) {
        for (std::size_t k = 0; k < 32; ++k) {
            max_err = std::max(max_err,
                               std::abs(b.span(i)[k] - x.span(i)[k]));
        }
    }
    EXPECT_LT(max_err, 1e-6);  // random 32x32 can be mildly conditioned
}

}  // namespace
}  // namespace vbatch
