// Tests for the batched Cholesky (the paper's future-work variant).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/blas2.hpp"
#include "blas/blas3.hpp"
#include "blas/dense_matrix.hpp"
#include "blas/lapack.hpp"
#include "core/cholesky.hpp"
#include "precond/block_jacobi.hpp"
#include "precond/scalar_jacobi.hpp"
#include "solvers/cg.hpp"
#include "sparse/generators.hpp"

namespace vbatch::core {
namespace {

/// Random SPD batch: A = R R^T + n I per block.
BatchedMatrices<double> random_spd(BatchLayoutPtr layout,
                                   std::uint64_t seed) {
    auto batch = BatchedMatrices<double>::random_general(layout, seed);
    for (size_type b = 0; b < batch.count(); ++b) {
        auto v = batch.view(b);
        const index_type m = v.rows();
        DenseMatrix<double> r(m, m);
        for (index_type j = 0; j < m; ++j) {
            for (index_type i = 0; i < m; ++i) {
                r(i, j) = v(i, j);
            }
        }
        auto spd = DenseMatrix<double>::zeros(m, m);
        // spd = r * r^T  (gemm_tn computes A^T B; use transpose of r).
        blas::gemm_tn(1.0, r.view(), r.view(), 0.0, spd.view());
        for (index_type j = 0; j < m; ++j) {
            for (index_type i = 0; i < m; ++i) {
                v(i, j) = spd(i, j) + (i == j ? m : 0.0);
            }
        }
    }
    return batch;
}

class CholSizes : public ::testing::TestWithParam<index_type> {};

TEST_P(CholSizes, FactorReconstructsMatrix) {
    const index_type m = GetParam();
    auto batch = random_spd(make_uniform_layout(8, m), 10 + m);
    auto original = batch.clone();
    ASSERT_TRUE(potrf_batch(batch).ok());
    for (size_type b = 0; b < batch.count(); ++b) {
        const auto l = batch.view(b);
        const auto a = original.view(b);
        for (index_type i = 0; i < m; ++i) {
            for (index_type j = 0; j <= i; ++j) {
                double acc = 0;
                for (index_type k = 0; k <= j; ++k) {
                    acc += l(i, k) * l(j, k);
                }
                EXPECT_NEAR(acc, a(i, j),
                            1e-10 * std::max(1.0, std::abs(a(i, j))))
                    << b << " (" << i << "," << j << ")";
            }
        }
    }
}

TEST_P(CholSizes, SolveMatchesReference) {
    const index_type m = GetParam();
    auto batch = random_spd(make_uniform_layout(6, m), 20 + m);
    auto original = batch.clone();
    ASSERT_TRUE(potrf_batch(batch).ok());
    auto b = BatchedVectors<double>::random(batch.layout_ptr(), 3);
    auto ref = b.clone();
    TrsvOptions opts;
    potrs_batch(batch, b, opts);
    for (size_type i = 0; i < batch.count(); ++i) {
        std::vector<double> r(ref.span(i).begin(), ref.span(i).end());
        ASSERT_EQ(lapack::gesv<double>(original.view(i),
                                       std::span<double>(r)),
                  0);
        for (index_type k = 0; k < m; ++k) {
            EXPECT_NEAR(b.span(i)[static_cast<std::size_t>(k)],
                        r[static_cast<std::size_t>(k)], 1e-8);
        }
    }
}

TEST_P(CholSizes, WarpKernelBitwiseMatchesCpu) {
    const index_type m = GetParam();
    auto a_cpu = random_spd(make_uniform_layout(4, m), 30 + m);
    auto a_simt = a_cpu.clone();
    GetrfOptions seq;
    seq.parallel = false;
    potrf_batch(a_cpu, seq);
    EXPECT_TRUE(potrf_batch_simt(a_simt).status.ok());
    for (size_type b = 0; b < a_cpu.count(); ++b) {
        const auto vc = a_cpu.view(b);
        const auto vs = a_simt.view(b);
        for (index_type i = 0; i < m; ++i) {
            for (index_type j = 0; j <= i; ++j) {
                EXPECT_EQ(vc(i, j), vs(i, j));
            }
        }
    }
    auto b_cpu = BatchedVectors<double>::random(a_cpu.layout_ptr(), 7);
    auto b_simt = b_cpu.clone();
    TrsvOptions opts;
    opts.parallel = false;
    potrs_batch(a_cpu, b_cpu, opts);
    potrs_batch_simt(a_simt, b_simt);
    for (size_type v = 0; v < a_cpu.layout().total_rows(); ++v) {
        EXPECT_EQ(b_cpu.data()[v], b_simt.data()[v]);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholSizes,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 16, 24, 32));

TEST(Cholesky, RejectsIndefiniteBlocks) {
    auto batch = BatchedMatrices<double>(make_uniform_layout(1, 2));
    auto v = batch.view(0);
    v(0, 0) = 1.0;
    v(1, 1) = -1.0;  // indefinite
    try {
        potrf_batch(batch);
        FAIL() << "expected SingularMatrix";
    } catch (const SingularMatrix& e) {
        EXPECT_EQ(e.step(), 2);
    }
}

TEST(Cholesky, CheaperThanLuOnTheWarp) {
    // In the padded warp kernel the trailing-update *issue* count matches
    // LU (inactive lanes still occupy the slot), but Cholesky skips the
    // pivot reductions and permutation stores, touches only the lower
    // triangle in memory, and does half the useful flops.
    const index_type m = 32;
    auto spd = random_spd(make_uniform_layout(4, m), 5);
    auto lu = spd.clone();
    const auto chol_res = potrf_batch_simt(spd);
    BatchedPivots perm(lu.layout_ptr());
    const auto lu_res = getrf_batch_simt(lu, perm);
    EXPECT_LE(chol_res.stats.fp_instructions, lu_res.stats.fp_instructions);
    EXPECT_LT(chol_res.stats.shuffle_instructions,
              lu_res.stats.shuffle_instructions);
    EXPECT_LT(chol_res.stats.misc_instructions,
              lu_res.stats.misc_instructions);
    EXPECT_LT(static_cast<double>(chol_res.stats.load_transactions +
                                  chol_res.stats.store_transactions),
              0.7 * static_cast<double>(lu_res.stats.load_transactions +
                                        lu_res.stats.store_transactions));
    EXPECT_LT(static_cast<double>(chol_res.stats.useful_flops),
              0.7 * static_cast<double>(lu_res.stats.useful_flops));
}

TEST(Cholesky, VariableSizeBatch) {
    auto layout = make_layout({1, 4, 9, 17, 32});
    auto batch = random_spd(layout, 9);
    auto original = batch.clone();
    ASSERT_TRUE(potrf_batch(batch).ok());
    auto b = BatchedVectors<double>::ones(layout);
    potrs_batch(batch, b);
    for (size_type i = 0; i < layout->count(); ++i) {
        const index_type m = layout->size(i);
        std::vector<double> back(static_cast<std::size_t>(m), 0.0);
        blas::gemv(1.0, original.view(i),
                   std::span<const double>(b.span(i)), 0.0,
                   std::span<double>(back));
        for (index_type k = 0; k < m; ++k) {
            EXPECT_NEAR(back[static_cast<std::size_t>(k)], 1.0, 1e-9);
        }
    }
}

TEST(Cholesky, EagerAndLazySolvesAgree) {
    auto batch = random_spd(make_uniform_layout(3, 16), 11);
    ASSERT_TRUE(potrf_batch(batch).ok());
    auto b1 = BatchedVectors<double>::random(batch.layout_ptr(), 2);
    auto b2 = b1.clone();
    TrsvOptions eager, lazy;
    eager.variant = TrsvVariant::eager;
    lazy.variant = TrsvVariant::lazy;
    potrs_batch(batch, b1, eager);
    potrs_batch(batch, b2, lazy);
    for (size_type v = 0; v < batch.layout().total_rows(); ++v) {
        EXPECT_NEAR(b1.data()[v], b2.data()[v],
                    1e-11 * std::max(1.0, std::abs(b1.data()[v])));
    }
}

TEST(CholeskyBlockJacobi, AcceleratesCgOnSpdProblem) {
    const auto a = sparse::laplacian_2d<double>(24, 24, 4, 3);
    ASSERT_TRUE(a.is_symmetric(1e-12));
    std::vector<double> b(static_cast<std::size_t>(a.num_rows()), 1.0);

    precond::BlockJacobiOptions copts;
    copts.backend = precond::BlockJacobiBackend::cholesky;
    copts.max_block_size = 16;
    precond::BlockJacobi<double> chol(a, copts);
    std::vector<double> x1(b.size(), 0.0);
    const auto r_chol = solvers::cg(a, std::span<const double>(b),
                                    std::span<double>(x1), chol);
    ASSERT_TRUE(r_chol.converged());

    // Same preconditioner via LU: identical math, so iteration counts are
    // essentially equal; Cholesky just does less setup work.
    precond::BlockJacobiOptions lopts;
    lopts.backend = precond::BlockJacobiBackend::lu;
    lopts.max_block_size = 16;
    precond::BlockJacobi<double> lu(a, lopts);
    std::vector<double> x2(b.size(), 0.0);
    const auto r_lu = solvers::cg(a, std::span<const double>(b),
                                  std::span<double>(x2), lu);
    ASSERT_TRUE(r_lu.converged());
    EXPECT_NEAR(r_chol.iterations, r_lu.iterations, 3);

    // And it beats scalar Jacobi.
    precond::ScalarJacobi<double> jac(a);
    std::vector<double> x3(b.size(), 0.0);
    const auto r_jac = solvers::cg(a, std::span<const double>(b),
                                   std::span<double>(x3), jac);
    EXPECT_LT(r_chol.iterations, r_jac.iterations);
}

TEST(CholeskyBlockJacobi, ThrowsOnIndefiniteBlocksUnderStrictPolicy) {
    // A diagonal block with a negative eigenvalue defeats Cholesky.
    auto a = sparse::Csr<double>::from_triplets(
        4, 4,
        {{0, 0, 2.0}, {1, 1, 2.0}, {2, 2, -1.0}, {2, 3, 0.5},
         {3, 2, 0.5}, {3, 3, 2.0}});
    precond::BlockJacobiOptions opts;
    opts.backend = precond::BlockJacobiBackend::cholesky;
    opts.layout = core::make_layout({1, 1, 2});
    opts.recovery = precond::RecoveryPolicy::strict();
    EXPECT_THROW((precond::BlockJacobi<double>(a, opts)), SingularMatrix);
}

TEST(CholeskyBlockJacobi, IndefiniteBlockBoostsByDefault) {
    auto a = sparse::Csr<double>::from_triplets(
        4, 4,
        {{0, 0, 2.0}, {1, 1, 2.0}, {2, 2, -1.0}, {2, 3, 0.5},
         {3, 2, 0.5}, {3, 3, 2.0}});
    precond::BlockJacobiOptions opts;
    opts.backend = precond::BlockJacobiBackend::cholesky;
    opts.layout = core::make_layout({1, 1, 2});
    const precond::BlockJacobi<double> prec(a, opts);
    const auto summary = prec.recovery_summary();
    EXPECT_EQ(summary.boosted, 1);
    EXPECT_EQ(summary.ok, 2);
    EXPECT_EQ(prec.block_status()[2], core::BlockStatus::boosted);
}

}  // namespace
}  // namespace vbatch::core
