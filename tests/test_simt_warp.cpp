// Unit tests for the SIMT warp emulation layer: masks, shuffles,
// reductions, and the transaction-counting memory model.
#include <gtest/gtest.h>

#include <vector>

#include "simt/warp.hpp"

namespace vbatch::simt {
namespace {

TEST(LaneMask, FirstLanesAndRanges) {
    EXPECT_EQ(first_lanes(0), 0u);
    EXPECT_EQ(first_lanes(1), 1u);
    EXPECT_EQ(first_lanes(4), 0xfu);
    EXPECT_EQ(first_lanes(32), full_mask);
    EXPECT_EQ(lane_range(2, 5), 0b11100u);
    EXPECT_EQ(lane_range(0, 32), full_mask);
    EXPECT_EQ(lane_range(7, 7), 0u);
    EXPECT_EQ(popcount(first_lanes(13)), 13);
}

TEST(Warp, LaneIdAndBroadcast) {
    const auto ids = Warp::lane_id();
    for (index_type l = 0; l < warp_size; ++l) {
        EXPECT_EQ(ids[l], l);
    }
    const auto b = Warp::broadcast_value(3.5);
    EXPECT_EQ(b[0], 3.5);
    EXPECT_EQ(b[31], 3.5);
}

TEST(Warp, ShuffleBroadcastsAndCounts) {
    Warp w;
    Reg<double> v{};
    for (int l = 0; l < warp_size; ++l) {
        v[l] = l * 10.0;
    }
    EXPECT_EQ(w.shfl(v, 7), 70.0);
    EXPECT_EQ(w.stats().shuffle_instructions, 1);
}

TEST(Warp, ShuffleIndexedGathers) {
    Warp w;
    Reg<int> v{};
    Reg<index_type> src{};
    for (int l = 0; l < warp_size; ++l) {
        v[l] = l;
        src[l] = warp_size - 1 - l;
    }
    const auto r = w.shfl_indexed(full_mask, v, src);
    for (int l = 0; l < warp_size; ++l) {
        EXPECT_EQ(r[l], warp_size - 1 - l);
    }
}

TEST(Warp, BallotRespectsMask) {
    Warp w;
    Reg<int> pred{};
    pred[1] = 1;
    pred[5] = 1;
    pred[9] = 1;
    EXPECT_EQ(w.ballot(first_lanes(8), pred), (1u << 1) | (1u << 5));
}

TEST(Warp, ReduceAbsmaxFindsFirstMaximum) {
    Warp w;
    Reg<double> v{};
    v[3] = -9.0;
    v[10] = 9.0;   // tie in magnitude: lane 3 comes first
    v[20] = 5.0;
    const auto [val, lane] = w.reduce_absmax(full_mask, v);
    EXPECT_EQ(val, 9.0);
    EXPECT_EQ(lane, 3);
    // Restricting the mask excludes candidates.
    const auto [val2, lane2] = w.reduce_absmax(lane_range(4, 32), v);
    EXPECT_EQ(val2, 9.0);
    EXPECT_EQ(lane2, 10);
}

TEST(Warp, ReduceSum) {
    Warp w;
    Reg<double> v{};
    for (int l = 0; l < warp_size; ++l) {
        v[l] = 1.0;
    }
    EXPECT_EQ(w.reduce_sum(first_lanes(10), v), 10.0);
}

TEST(Warp, ArithmeticMasksAndUsefulFlops) {
    Warp w;
    Reg<double> a{};
    Reg<double> c{};
    for (int l = 0; l < warp_size; ++l) {
        a[l] = 2.0;
        c[l] = 10.0;
    }
    const auto r = w.fnma_scalar(first_lanes(4), a, 3.0, c, first_lanes(2));
    EXPECT_EQ(r[0], 4.0);   // 10 - 2*3
    EXPECT_EQ(r[3], 4.0);
    EXPECT_EQ(r[4], 10.0);  // inactive lane unchanged
    EXPECT_EQ(w.stats().fp_instructions, 1);
    EXPECT_EQ(w.stats().useful_flops, 4);  // 2 lanes x 2 flops

    const auto d = w.div_scalar(first_lanes(2), a, 2.0, first_lanes(2));
    EXPECT_EQ(d[0], 1.0);
    EXPECT_EQ(w.stats().div_instructions, 1);
}

TEST(Warp, CoalescedLoadCountsFewSectors) {
    Warp w;
    std::vector<double> data(64, 1.5);
    const auto r = w.load_global_strided(full_mask, data.data());
    EXPECT_EQ(r[31], 1.5);
    // 32 doubles = 256 contiguous bytes = 8 or 9 sectors depending on
    // alignment.
    EXPECT_LE(w.stats().load_transactions, 9);
    EXPECT_GE(w.stats().load_transactions, 8);
    EXPECT_EQ(w.stats().load_requests, 1);
}

TEST(Warp, StridedLoadCountsManySectors) {
    Warp w;
    std::vector<double> data(32 * 32, 2.0);
    // Stride of 32 doubles: every lane touches its own sector.
    const auto r = w.load_global_strided(full_mask, data.data(), 32);
    EXPECT_EQ(r[5], 2.0);
    EXPECT_EQ(w.stats().load_transactions, 32);
}

TEST(Warp, PermutedContiguousStoreStaysCoalesced) {
    Warp w;
    std::vector<float> data(32, 0.0f);
    Reg<float*> addr{};
    Reg<float> vals{};
    for (int l = 0; l < warp_size; ++l) {
        addr[l] = data.data() + (31 - l);  // permutation of a dense range
        vals[l] = static_cast<float>(l);
    }
    w.store_global(full_mask, addr, vals);
    EXPECT_EQ(data[31], 0.0f);  // lane 0 wrote to index 31
    EXPECT_EQ(data[0], 31.0f);
    // 32 floats = 128 bytes = 4-5 sectors despite the permutation.
    EXPECT_LE(w.stats().store_transactions, 5);
}

TEST(Warp, MaskedMemoryOnlyTouchesActiveLanes) {
    Warp w;
    std::vector<double> data(32, 1.0);
    Reg<double> vals = Warp::broadcast_value(9.0);
    Reg<double*> addr{};
    for (int l = 0; l < warp_size; ++l) {
        addr[l] = data.data() + l;
    }
    w.store_global(first_lanes(3), addr, vals);
    EXPECT_EQ(data[2], 9.0);
    EXPECT_EQ(data[3], 1.0);
}

TEST(Warp, StridedLoadCountsReplays) {
    Warp w;
    std::vector<double> data(32 * 32, 2.0);
    w.load_global_strided(full_mask, data.data(), 32);
    // 32 sectors -> 31 replays beyond the first.
    EXPECT_EQ(w.stats().load_replays, 31);
    w.reset_stats();
    w.load_global_strided(full_mask, data.data(), 1);
    EXPECT_LE(w.stats().load_replays, 8);
}

TEST(Warp, WriteCombiningDeduplicatesStoreTraffic) {
    Warp w;
    std::vector<double> data(32 * 32, 0.0);
    // Column-major strided stores into an m x m tile: every instruction is
    // non-coalesced (32 sectors), but the tile only has 256 sectors total.
    for (int i = 0; i < 32; ++i) {
        Reg<double*> addr{};
        Reg<double> vals{};
        for (int l = 0; l < warp_size; ++l) {
            addr[l] = data.data() + l * 32 + i;
            vals[l] = 1.0;
        }
        w.store_global(full_mask, addr, vals);
    }
    // Replays: 31 per instruction (LSU serialization)...
    EXPECT_EQ(w.stats().store_replays, 32 * 31);
    // ...but the DRAM traffic is just the unique sectors of the tile.
    EXPECT_LE(w.stats().store_transactions, 257);
    EXPECT_GE(w.stats().store_transactions, 256);
    // A second pass over the same tile is fully combined.
    const auto before = w.stats().store_transactions;
    Reg<double*> addr{};
    for (int l = 0; l < warp_size; ++l) {
        addr[l] = data.data() + l;
    }
    w.store_global(full_mask, addr, Warp::broadcast_value(2.0));
    EXPECT_EQ(w.stats().store_transactions, before);
    // Until the combiner is flushed.
    w.flush_write_combiner();
    w.store_global(full_mask, addr, Warp::broadcast_value(3.0));
    EXPECT_GT(w.stats().store_transactions, before);
}

TEST(Warp, AccountingOnlyHelpersTouchNoData) {
    Warp w;
    std::vector<double> data(32, 7.0);
    Reg<const double*> laddr{};
    Reg<double*> saddr{};
    for (int l = 0; l < warp_size; ++l) {
        laddr[l] = data.data() + l;
        saddr[l] = data.data() + l;
    }
    w.account_load(full_mask, laddr);
    w.account_store(full_mask, saddr);
    EXPECT_EQ(w.stats().load_requests, 1);
    EXPECT_EQ(w.stats().store_requests, 1);
    for (const auto v : data) {
        EXPECT_EQ(v, 7.0);
    }
}

TEST(Warp, PerLaneDivAndFnma) {
    Warp w;
    Reg<double> a = Warp::broadcast_value(12.0);
    Reg<double> s{};
    Reg<double> c = Warp::broadcast_value(100.0);
    for (int l = 0; l < warp_size; ++l) {
        s[l] = l + 1.0;
    }
    const auto d = w.div(first_lanes(4), a, s, first_lanes(4));
    EXPECT_EQ(d[0], 12.0);
    EXPECT_EQ(d[3], 3.0);
    EXPECT_EQ(d[4], 12.0);  // inactive: passthrough
    EXPECT_EQ(w.stats().div_instructions, 1);
    const auto f = w.fnma(first_lanes(2), a, s, c, first_lanes(2));
    EXPECT_EQ(f[0], 100.0 - 12.0);
    EXPECT_EQ(f[1], 100.0 - 24.0);
    EXPECT_EQ(f[2], 100.0);
    EXPECT_EQ(w.stats().useful_flops, 4 + 4);  // div 4 + fnma 2x2
}

TEST(Warp, ReduceAbsmaxHalves) {
    Warp w;
    Reg<double> v{};
    v[3] = -5.0;
    v[9] = 4.0;
    v[17] = 7.0;
    v[30] = -7.0;  // tie in the high half: first lane wins
    const auto r = w.reduce_absmax_halves(full_mask, v);
    EXPECT_EQ(r[0].first, 5.0);
    EXPECT_EQ(r[0].second, 3);
    EXPECT_EQ(r[1].first, 7.0);
    EXPECT_EQ(r[1].second, 17);
    // Empty half yields {0, -1}.
    const auto e = w.reduce_absmax_halves(first_lanes(16), v);
    EXPECT_EQ(e[1].second, -1);
    // 4-step butterfly serves both halves.
    EXPECT_EQ(w.stats().shuffle_instructions, 8);
}

TEST(Warp, SharedMemoryBankConflicts) {
    Warp w;
    // Conflict-free: each lane hits its own bank.
    Reg<index_type> offs{};
    for (int l = 0; l < warp_size; ++l) {
        offs[l] = l;
    }
    w.shared_access(full_mask, offs, 1);
    EXPECT_EQ(w.stats().shared_bank_conflicts, 0);
    // Worst case: all lanes hit bank 0.
    Reg<index_type> same{};
    for (int l = 0; l < warp_size; ++l) {
        same[l] = l * 32;
    }
    w.shared_access(full_mask, same, 1);
    EXPECT_EQ(w.stats().shared_bank_conflicts, 31);
}

TEST(Warp, StatsAccumulateAndReset) {
    Warp w;
    Reg<double> v{};
    w.shfl(v, 0);
    w.shfl(v, 1);
    EXPECT_EQ(w.stats().shuffle_instructions, 2);
    w.reset_stats();
    EXPECT_EQ(w.stats().shuffle_instructions, 0);
}

TEST(KernelStats, Addition) {
    KernelStats a;
    a.fp_instructions = 3;
    a.load_transactions = 2;
    KernelStats b;
    b.fp_instructions = 4;
    b.useful_flops = 7;
    const auto c = a + b;
    EXPECT_EQ(c.fp_instructions, 7);
    EXPECT_EQ(c.load_transactions, 2);
    EXPECT_EQ(c.useful_flops, 7);
    EXPECT_EQ(c.load_bytes(), 64);
}

}  // namespace
}  // namespace vbatch::simt
