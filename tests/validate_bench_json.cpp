// Schema validator for the BENCH_<name>.json artifacts the figure
// benchmarks emit (obs::BenchReport, schema_version 2; key-by-key
// documentation in DESIGN.md). Used by CTest
// (bench_*_json_validate) and by hand:
//
//   VBATCH_BENCH_JSON=1 ./build/bench/bench_fig4_getrf_batch
//   ./build/tests/validate_bench_json BENCH_fig4_getrf_batch.json
//
// Exits 0 when every file conforms, 1 otherwise.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"

namespace {

using vbatch::obs::JsonValue;

int errors = 0;

void fail(const std::string& path, const std::string& what) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), what.c_str());
    ++errors;
}

const JsonValue* require(const std::string& path, const JsonValue& root,
                         const char* key, JsonValue::Type type) {
    const JsonValue* v = root.find(key);
    if (v == nullptr) {
        fail(path, std::string("missing key \"") + key + "\"");
        return nullptr;
    }
    if (v->type != type) {
        fail(path, std::string("key \"") + key + "\" has the wrong type");
        return nullptr;
    }
    return v;
}

void check_series(const std::string& path, const JsonValue& series) {
    for (const auto& s : series.items) {
        if (!s.is_object()) {
            fail(path, "series entry is not an object");
            continue;
        }
        require(path, s, "name", JsonValue::Type::string);
        require(path, s, "x_label", JsonValue::Type::string);
        require(path, s, "unit", JsonValue::Type::string);
        const auto* points =
            require(path, s, "points", JsonValue::Type::array);
        if (points == nullptr) {
            continue;
        }
        for (const auto& p : points->items) {
            if (!p.is_array() || p.items.size() != 2 ||
                !p.items[0].is_number() || !p.items[1].is_number()) {
                fail(path, "series point is not a [x, y] number pair");
                break;
            }
        }
    }
}

void check_phases(const std::string& path, const JsonValue& phases) {
    for (const auto& p : phases.items) {
        if (!p.is_object()) {
            fail(path, "phase entry is not an object");
            continue;
        }
        require(path, p, "name", JsonValue::Type::string);
        require(path, p, "seconds", JsonValue::Type::number);
    }
}

void check_kernel_stats(const std::string& path, const JsonValue& kernels) {
    for (const auto& [family, stats] : kernels.members) {
        if (!stats.is_object()) {
            fail(path, "kernel_stats entry \"" + family +
                           "\" is not an object");
            continue;
        }
        require(path, stats, "launches", JsonValue::Type::number);
        require(path, stats, "problems", JsonValue::Type::number);
        require(path, stats, "modeled_seconds", JsonValue::Type::number);
    }
}

// Any run that set up a block-Jacobi preconditioner must account for
// every diagonal block: the recovery pipeline exports one counter per
// BlockStatus, and they have to be present (and numeric) alongside the
// setup counter. Likewise the symbolic/numeric setup split exports a
// complete phase breakdown (plan build + fused gather/factorize/pack)
// -- a run missing one of them mixed old and new pipelines.
void check_recovery_counters(const std::string& path,
                             const JsonValue& counters) {
    if (counters.find("block_jacobi.setups") == nullptr) {
        return;
    }
    for (const char* key :
         {"block_jacobi.blocks_ok", "block_jacobi.blocks_boosted",
          "block_jacobi.blocks_fell_back", "block_jacobi.blocks_singular",
          "block_jacobi.plan_builds", "block_jacobi.plan_seconds",
          "block_jacobi.gather_seconds", "block_jacobi.factorize_seconds",
          "block_jacobi.pack_seconds"}) {
        require(path, counters, key, JsonValue::Type::number);
    }
}

// Schema v2 roofline accounting: every traffic family must carry the
// raw totals and all four derived rates, so downstream tooling
// (vbatch_prof, plots) never has to re-derive them.
void check_traffic(const std::string& path, const JsonValue& traffic) {
    for (const auto& [family, stats] : traffic.members) {
        if (!stats.is_object()) {
            fail(path,
                 "traffic entry \"" + family + "\" is not an object");
            continue;
        }
        for (const char* key :
             {"flops", "bytes", "seconds", "calls", "problems", "roof_gbs",
              "gflops", "bandwidth_gbs", "arithmetic_intensity",
              "fraction_of_roof"}) {
            require(path, stats, key, JsonValue::Type::number);
        }
    }
}

void check_perf(const std::string& path, const JsonValue& perf) {
    for (const auto& [region, stats] : perf.members) {
        if (!stats.is_object()) {
            fail(path, "perf entry \"" + region + "\" is not an object");
            continue;
        }
        for (const char* key :
             {"calls", "hardware_calls", "seconds", "cycles",
              "instructions", "ipc", "l1d_misses", "llc_misses",
              "branch_misses"}) {
            require(path, stats, key, JsonValue::Type::number);
        }
    }
}

void check_pool(const std::string& path, const JsonValue& pool) {
    for (const char* key :
         {"workers", "wall_seconds", "busy_seconds", "idle_seconds",
          "utilization", "dispatches", "inline_runs", "steals",
          "steal_fails", "splits", "parks", "mean_imbalance",
          "last_imbalance"}) {
        require(path, pool, key, JsonValue::Type::number);
    }
    require(path, pool, "armed", JsonValue::Type::boolean);
}

void validate(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        fail(path, "cannot open file");
        return;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    JsonValue root;
    try {
        root = vbatch::obs::parse_json(buf.str());
    } catch (const vbatch::obs::JsonError& e) {
        fail(path, std::string("parse error: ") + e.what());
        return;
    }
    if (!root.is_object()) {
        fail(path, "top-level value is not an object");
        return;
    }
    const auto* version =
        require(path, root, "schema_version", JsonValue::Type::number);
    if (version != nullptr && version->number != 2.0) {
        fail(path, "unsupported schema_version (expected 2)");
    }
    require(path, root, "name", JsonValue::Type::string);
    require(path, root, "config", JsonValue::Type::object);
    if (const auto* counters =
            require(path, root, "counters", JsonValue::Type::object)) {
        check_recovery_counters(path, *counters);
    }
    require(path, root, "gauges", JsonValue::Type::object);
    require(path, root, "wall_seconds", JsonValue::Type::number);
    if (const auto* phases =
            require(path, root, "phases", JsonValue::Type::array)) {
        check_phases(path, *phases);
    }
    if (const auto* series =
            require(path, root, "series", JsonValue::Type::array)) {
        check_series(path, *series);
    }
    if (const auto* kernels =
            require(path, root, "kernel_stats", JsonValue::Type::object)) {
        check_kernel_stats(path, *kernels);
    }
    if (const auto* traffic =
            require(path, root, "traffic", JsonValue::Type::object)) {
        check_traffic(path, *traffic);
    }
    if (const auto* perf =
            require(path, root, "perf", JsonValue::Type::object)) {
        check_perf(path, *perf);
    }
    if (const auto* pool =
            require(path, root, "pool", JsonValue::Type::object)) {
        check_pool(path, *pool);
    }
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr, "usage: %s BENCH_<name>.json...\n", argv[0]);
        return 2;
    }
    for (int i = 1; i < argc; ++i) {
        validate(argv[i]);
    }
    if (errors == 0) {
        std::printf("%d file(s) conform to bench schema v2\n", argc - 1);
    }
    return errors == 0 ? 0 : 1;
}
