// Tests for the Gauss-Huard baseline (standard and transposed storage).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/blas2.hpp"
#include "blas/dense_matrix.hpp"
#include "blas/lapack.hpp"
#include "core/gauss_huard.hpp"

namespace vbatch::core {
namespace {

class GhSizes
    : public ::testing::TestWithParam<std::tuple<index_type, GhStorage>> {};

TEST_P(GhSizes, FactorizeAndSolveMatchesReference) {
    const auto [m, storage] = GetParam();
    const size_type nb = 10;
    auto batch = BatchedMatrices<double>::random_general(
        make_uniform_layout(nb, m), 600 + m);
    auto original = batch.clone();
    BatchedPivots cperm(batch.layout_ptr());
    ASSERT_TRUE(gauss_huard_batch(batch, cperm, storage).ok());

    auto b = BatchedVectors<double>::random(batch.layout_ptr(), 9);
    for (size_type i = 0; i < nb; ++i) {
        std::vector<double> ref(b.span(i).begin(), b.span(i).end());
        auto dense = DenseMatrix<double>(m, m);
        for (index_type jj = 0; jj < m; ++jj) {
            for (index_type ii = 0; ii < m; ++ii) {
                dense(ii, jj) = original.view(i)(ii, jj);
            }
        }
        ASSERT_EQ(lapack::gesv<double>(dense.view(), std::span<double>(ref)),
                  0);
        gauss_huard_solve<double>(batch.view(i), cperm.span(i), b.span(i),
                                  storage);
        for (index_type k = 0; k < m; ++k) {
            EXPECT_NEAR(b.span(i)[static_cast<std::size_t>(k)],
                        ref[static_cast<std::size_t>(k)], 1e-8)
                << "entry " << i << " row " << k;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndStorage, GhSizes,
    ::testing::Combine(::testing::Values<index_type>(1, 2, 3, 5, 8, 13, 16,
                                                     24, 32),
                       ::testing::Values(GhStorage::standard,
                                         GhStorage::transposed)));

TEST(GaussHuard, StandardAndTransposedGiveSameSolution) {
    const index_type m = 17;
    auto a1 = BatchedMatrices<double>::random_general(
        make_uniform_layout(4, m), 3);
    auto a2 = a1.clone();
    BatchedPivots p1(a1.layout_ptr()), p2(a2.layout_ptr());
    gauss_huard_batch(a1, p1, GhStorage::standard);
    gauss_huard_batch(a2, p2, GhStorage::transposed);
    auto b1 = BatchedVectors<double>::random(a1.layout_ptr(), 5);
    auto b2 = b1.clone();
    gauss_huard_solve_batch(a1, p1, b1, GhStorage::standard);
    gauss_huard_solve_batch(a2, p2, b2, GhStorage::transposed);
    for (size_type i = 0; i < a1.count(); ++i) {
        for (index_type k = 0; k < m; ++k) {
            // Same arithmetic, different storage orientation: bitwise.
            EXPECT_EQ(b1.span(i)[static_cast<std::size_t>(k)],
                      b2.span(i)[static_cast<std::size_t>(k)]);
        }
    }
}

TEST(GaussHuard, FactorsAreTransposesOfEachOther) {
    const index_type m = 9;
    auto a1 = BatchedMatrices<double>::random_general(
        make_uniform_layout(1, m), 77);
    auto a2 = a1.clone();
    BatchedPivots p1(a1.layout_ptr()), p2(a2.layout_ptr());
    gauss_huard_batch(a1, p1, GhStorage::standard);
    gauss_huard_batch(a2, p2, GhStorage::transposed);
    const auto v1 = a1.view(0);
    const auto v2 = a2.view(0);
    for (index_type j = 0; j < m; ++j) {
        for (index_type i = 0; i < m; ++i) {
            EXPECT_EQ(v1(i, j), v2(j, i));
        }
    }
}

TEST(GaussHuard, ColumnPivotingRescuesZeroDiagonal) {
    auto batch = BatchedMatrices<double>(make_uniform_layout(1, 2));
    auto v = batch.view(0);
    v(0, 0) = 0.0;
    v(0, 1) = 2.0;
    v(1, 0) = 1.0;
    v(1, 1) = 0.0;
    BatchedPivots cperm(batch.layout_ptr());
    ASSERT_TRUE(gauss_huard_batch(batch, cperm).ok());
    EXPECT_EQ(cperm.span(0)[0], 1);  // column 1 picked first
    std::vector<double> b{2.0, 3.0};
    gauss_huard_solve<double>(batch.view(0), cperm.span(0),
                              std::span<double>(b));
    // Solution of [[0,2],[1,0]] x = (2,3): x = (3, 1).
    EXPECT_NEAR(b[0], 3.0, 1e-14);
    EXPECT_NEAR(b[1], 1.0, 1e-14);
}

TEST(GaussHuard, ThrowsOnSingular) {
    auto batch = BatchedMatrices<double>(make_uniform_layout(1, 3));
    BatchedPivots cperm(batch.layout_ptr());
    EXPECT_THROW(gauss_huard_batch(batch, cperm), SingularMatrix);
}

TEST(GaussHuard, ReportPolicyRecordsFailures) {
    auto batch = BatchedMatrices<double>(make_uniform_layout(2, 3));
    auto v1 = batch.view(1);
    for (index_type i = 0; i < 3; ++i) {
        v1(i, i) = 1.0;
    }
    BatchedPivots cperm(batch.layout_ptr());
    GetrfOptions opts;
    opts.on_singular = SingularPolicy::report;
    const auto status = gauss_huard_batch(batch, cperm,
                                          GhStorage::standard, opts);
    EXPECT_EQ(status.failures, 1);
    EXPECT_EQ(status.first_failure, 0);
}

TEST(GaussHuard, VariableSizeBatch) {
    auto layout = make_layout({2, 6, 18, 32});
    auto batch = BatchedMatrices<double>::random_general(layout, 55);
    auto original = batch.clone();
    BatchedPivots cperm(layout);
    ASSERT_TRUE(gauss_huard_batch(batch, cperm).ok());
    for (size_type i = 0; i < layout->count(); ++i) {
        const index_type m = layout->size(i);
        std::vector<double> x_ref(static_cast<std::size_t>(m));
        for (index_type k = 0; k < m; ++k) {
            x_ref[static_cast<std::size_t>(k)] = std::sin(k + 2.0);
        }
        std::vector<double> b(static_cast<std::size_t>(m));
        blas::gemv(1.0, original.view(i), std::span<const double>(x_ref),
                   0.0, std::span<double>(b));
        gauss_huard_solve<double>(batch.view(i), cperm.span(i),
                                  std::span<double>(b));
        for (index_type k = 0; k < m; ++k) {
            EXPECT_NEAR(b[static_cast<std::size_t>(k)],
                        x_ref[static_cast<std::size_t>(k)], 1e-8);
        }
    }
}

TEST(GaussHuard, DiffersFromLuInRounding) {
    // GH and LU are both stable but algorithmically different; on a generic
    // matrix their computed solutions agree only up to rounding -- the
    // effect behind the Fig. 8 convergence histogram.
    const index_type m = 24;
    auto a = BatchedMatrices<double>::random_general(
        make_uniform_layout(1, m), 321);
    auto a_lu = a.clone();
    BatchedPivots cperm(a.layout_ptr());
    gauss_huard_batch(a, cperm);
    std::vector<double> b(static_cast<std::size_t>(m), 1.0);
    gauss_huard_solve<double>(a.view(0), cperm.span(0),
                              std::span<double>(b));
    std::vector<double> b_lu(static_cast<std::size_t>(m), 1.0);
    DenseMatrix<double> dense(m, m);
    for (index_type j = 0; j < m; ++j) {
        for (index_type i = 0; i < m; ++i) {
            dense(i, j) = a_lu.view(0)(i, j);
        }
    }
    ASSERT_EQ(lapack::gesv<double>(dense.view(), std::span<double>(b_lu)),
              0);
    double max_rel = 0;
    bool identical = true;
    for (index_type i = 0; i < m; ++i) {
        const auto u = b[static_cast<std::size_t>(i)];
        const auto w = b_lu[static_cast<std::size_t>(i)];
        identical &= (u == w);
        max_rel = std::max(max_rel, std::abs(u - w) /
                                        std::max(1.0, std::abs(w)));
    }
    EXPECT_FALSE(identical);     // rounding differs...
    EXPECT_LT(max_rel, 1e-10);   // ...but both are accurate
}

}  // namespace
}  // namespace vbatch::core
