// Tests for the vendor-style (cuBLAS-substitute) fixed-size batched LU.
#include <gtest/gtest.h>

#include <vector>

#include "blas/blas2.hpp"
#include "core/vendor.hpp"

namespace vbatch::core {
namespace {

TEST(Vendor, RejectsVariableSizeBatches) {
    BatchedMatrices<double> a(make_layout({4, 8}));
    BatchedPivots ipiv(a.layout_ptr());
    EXPECT_THROW(vendor_getrf_batched(a, ipiv), NotSupported);
    BatchedVectors<double> b(a.layout_ptr());
    EXPECT_THROW(vendor_getrs_batched(a, ipiv, b), NotSupported);
}

class VendorSizes : public ::testing::TestWithParam<index_type> {};

TEST_P(VendorSizes, FactorizeSolveRoundTrip) {
    const index_type m = GetParam();
    const size_type nb = 16;
    auto a = BatchedMatrices<double>::random_general(
        make_uniform_layout(nb, m), 900 + m);
    auto original = a.clone();
    BatchedPivots ipiv(a.layout_ptr());
    ASSERT_TRUE(vendor_getrf_batched(a, ipiv).ok());
    auto x_ref = BatchedVectors<double>::random(a.layout_ptr(), 31);
    BatchedVectors<double> b(a.layout_ptr());
    for (size_type i = 0; i < nb; ++i) {
        blas::gemv(1.0, original.view(i),
                   std::span<const double>(x_ref.span(i)), 0.0, b.span(i));
    }
    vendor_getrs_batched(a, ipiv, b);
    for (size_type i = 0; i < nb; ++i) {
        for (index_type k = 0; k < m; ++k) {
            EXPECT_NEAR(b.span(i)[static_cast<std::size_t>(k)],
                        x_ref.span(i)[static_cast<std::size_t>(k)], 1e-8);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, VendorSizes,
                         ::testing::Values(1, 4, 8, 16, 32));

TEST(Vendor, UsesLapackIpivConvention) {
    // ipiv[k] = row swapped with row k (not a gather index).
    auto a = BatchedMatrices<double>(make_uniform_layout(1, 2));
    auto v = a.view(0);
    v(0, 0) = 0.0;
    v(0, 1) = 1.0;
    v(1, 0) = 2.0;
    v(1, 1) = 0.0;
    BatchedPivots ipiv(a.layout_ptr());
    ASSERT_TRUE(vendor_getrf_batched(a, ipiv).ok());
    EXPECT_EQ(ipiv.span(0)[0], 1);
    EXPECT_EQ(ipiv.span(0)[1], 1);
}

TEST(Vendor, ReportsSingularBatchEntries) {
    BatchedMatrices<double> a(make_uniform_layout(2, 3));
    auto v0 = a.view(0);
    for (index_type i = 0; i < 3; ++i) {
        v0(i, i) = 1.0;
    }
    BatchedPivots ipiv(a.layout_ptr());
    GetrfOptions opts;
    opts.on_singular = SingularPolicy::report;
    const auto status = vendor_getrf_batched(a, ipiv, opts);
    EXPECT_EQ(status.failures, 1);
    EXPECT_EQ(status.first_failure, 1);
}

}  // namespace
}  // namespace vbatch::core
