// Property tests for the synthetic sparse matrix generators.
#include "base/exception.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "sparse/generators.hpp"

namespace vbatch::sparse {
namespace {

/// Weak row-wise diagonal dominance with at least one strict row -- the
/// "irreducibly diagonally dominant" shape the PDE generators produce
/// (interior rows balance exactly, Dirichlet boundary rows are strict).
template <typename T>
bool is_diagonally_dominant(const Csr<T>& a) {
    bool any_strict = false;
    for (index_type i = 0; i < a.num_rows(); ++i) {
        T off{};
        T diag{};
        for (auto p = a.row_ptrs()[static_cast<std::size_t>(i)];
             p < a.row_ptrs()[static_cast<std::size_t>(i) + 1]; ++p) {
            const auto j = a.col_idxs()[static_cast<std::size_t>(p)];
            const auto v = a.values()[static_cast<std::size_t>(p)];
            if (j == i) {
                diag = std::abs(v);
            } else {
                off += std::abs(v);
            }
        }
        if (diag < off * (T{1} - T{1e-12})) {
            return false;
        }
        any_strict |= diag > off * (T{1} + T{1e-12});
    }
    return any_strict;
}

TEST(Laplacian2d, DimensionsAndPattern) {
    const auto a = laplacian_2d<double>(4, 3, 2);
    EXPECT_EQ(a.num_rows(), 24);
    EXPECT_TRUE(is_diagonally_dominant(a));
    // Interior node couples densely to 4 neighbours: row nnz =
    // dofs (own block) + 4 * dofs (dense coupling blocks).
    EXPECT_EQ(a.row_nnz(2 * (1 * 4 + 1)), 2 + 4 * 2);
    // Corner node: 2 neighbours.
    EXPECT_EQ(a.row_nnz(0), 2 + 2 * 2);
}

TEST(Laplacian2d, ScalarCaseIsSymmetricPattern) {
    const auto a = laplacian_2d<double>(5, 5, 1);
    EXPECT_EQ(a.num_rows(), 25);
    const auto t = a.transpose();
    // Pattern symmetric; the per-node random block makes values of the
    // dofs>1 case nonsymmetric, but dofs=1 blocks are 1x1 -> symmetric.
    for (index_type i = 0; i < a.num_rows(); ++i) {
        EXPECT_EQ(a.row_nnz(i), t.row_nnz(i));
    }
}

TEST(Laplacian3d, DimensionsAndDominance) {
    const auto a = laplacian_3d<double>(3, 4, 5, 2);
    EXPECT_EQ(a.num_rows(), 3 * 4 * 5 * 2);
    EXPECT_TRUE(is_diagonally_dominant(a));
    // Interior node has 6 neighbours (dense dofs x dofs coupling each).
    bool found6 = false;
    for (index_type i = 0; i < a.num_rows(); ++i) {
        found6 |= (a.row_nnz(i) == 2 + 6 * 2);
    }
    EXPECT_TRUE(found6);
}

TEST(ConvectionDiffusion, IsNonsymmetric) {
    const auto a = convection_diffusion_2d<double>(12, 12, 1, 20.0);
    EXPECT_FALSE(a.is_symmetric(1e-12));
    EXPECT_TRUE(is_diagonally_dominant(a));
}

TEST(ConvectionDiffusion, ZeroPecletIsLaplacianLike) {
    const auto a = convection_diffusion_2d<double>(8, 8, 1, 0.0);
    EXPECT_TRUE(a.is_symmetric(1e-12));
}

TEST(Anisotropic, WeightsReflectEpsilon) {
    const auto a = anisotropic_2d<double>(5, 5, 100.0, 1);
    // Vertical couplings are -100, horizontal -1.
    EXPECT_DOUBLE_EQ(a.at(12, 11), -1.0);
    EXPECT_DOUBLE_EQ(a.at(12, 7), -100.0);
    EXPECT_TRUE(is_diagonally_dominant(a));
    EXPECT_THROW(anisotropic_2d<double>(4, 4, -1.0, 1), BadParameter);
}

TEST(FemBlockMatrix, BlocksAreDenseAndDominant) {
    const auto a = fem_block_matrix<double>(50, 4, 8, 2, 0.25, 7);
    EXPECT_GE(a.num_rows(), 50 * 4);
    EXPECT_LE(a.num_rows(), 50 * 8);
    EXPECT_TRUE(is_diagonally_dominant(a));
    EXPECT_TRUE(a.is_symmetric(0.0) || true);  // pattern symmetric at least
    // Pattern symmetry (couplings are inserted pairwise).
    const auto t = a.transpose();
    for (index_type i = 0; i < a.num_rows(); ++i) {
        EXPECT_EQ(a.row_nnz(i), t.row_nnz(i));
    }
}

TEST(FemBlockMatrix, Deterministic) {
    const auto a = fem_block_matrix<double>(20, 2, 5, 1, 0.2, 3);
    const auto b = fem_block_matrix<double>(20, 2, 5, 1, 0.2, 3);
    EXPECT_EQ(a.num_rows(), b.num_rows());
    EXPECT_EQ(a.nnz(), b.nnz());
    for (size_type p = 0; p < a.nnz(); ++p) {
        EXPECT_EQ(a.values()[static_cast<std::size_t>(p)],
                  b.values()[static_cast<std::size_t>(p)]);
    }
}

TEST(CircuitLike, HasUnbalancedRows) {
    const auto a = circuit_like<double>(2000, 3, 5, 300, 11);
    EXPECT_TRUE(is_diagonally_dominant(a));
    index_type max_nnz = 0;
    double mean_nnz = 0;
    for (index_type i = 0; i < a.num_rows(); ++i) {
        max_nnz = std::max(max_nnz, a.row_nnz(i));
        mean_nnz += a.row_nnz(i);
    }
    mean_nnz /= a.num_rows();
    // Hub rows are far above the average -- the extraction stress case.
    EXPECT_GT(max_nnz, 10 * mean_nnz);
}

TEST(RandomBanded, BandStructure) {
    const auto a = random_banded<double>(50, 2, 1.0, 5);
    EXPECT_TRUE(is_diagonally_dominant(a));
    for (index_type i = 0; i < 50; ++i) {
        EXPECT_LE(a.row_nnz(i), 5);
        for (auto p = a.row_ptrs()[static_cast<std::size_t>(i)];
             p < a.row_ptrs()[static_cast<std::size_t>(i) + 1]; ++p) {
            EXPECT_LE(
                std::abs(a.col_idxs()[static_cast<std::size_t>(p)] - i), 2);
        }
    }
}

TEST(Generators, RejectInvalidParameters) {
    EXPECT_THROW(laplacian_2d<double>(0, 3, 1), BadParameter);
    EXPECT_THROW(fem_block_matrix<double>(10, 5, 3), BadParameter);
    EXPECT_THROW(fem_block_matrix<double>(10, 1, 40), BadParameter);
    EXPECT_THROW(circuit_like<double>(1, 2, 0, 5), BadParameter);
    EXPECT_THROW(random_banded<double>(-1, 2), BadParameter);
}

}  // namespace
}  // namespace vbatch::sparse
