// Tests for the reverse Cuthill-McKee reordering.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "base/exception.hpp"
#include "base/random.hpp"
#include "blocking/rcm.hpp"
#include "blocking/supervariable.hpp"
#include "sparse/generators.hpp"

namespace vbatch::blocking {
namespace {

using sparse::Csr;
using sparse::Triplet;

bool is_permutation(std::span<const index_type> p, index_type n) {
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    if (static_cast<index_type>(p.size()) != n) {
        return false;
    }
    for (const auto v : p) {
        if (v < 0 || v >= n || seen[static_cast<std::size_t>(v)]) {
            return false;
        }
        seen[static_cast<std::size_t>(v)] = true;
    }
    return true;
}

TEST(Rcm, ReturnsValidPermutation) {
    const auto a = sparse::laplacian_2d<double>(12, 9, 2);
    const auto perm = reverse_cuthill_mckee(a);
    EXPECT_TRUE(is_permutation(perm, a.num_rows()));
}

TEST(Rcm, ReducesBandwidthOfShuffledMatrix) {
    // Take a banded matrix, destroy its ordering with a random symmetric
    // permutation, and check RCM recovers a small bandwidth.
    const auto band = sparse::random_banded<double>(300, 3, 1.0, 7);
    const auto bw_orig = bandwidth(band);
    std::vector<index_type> shuffle(300);
    std::iota(shuffle.begin(), shuffle.end(), 0);
    auto eng = make_engine(5);
    for (index_type i = 299; i > 0; --i) {
        std::swap(shuffle[static_cast<std::size_t>(i)],
                  shuffle[static_cast<std::size_t>(
                      uniform_int(eng, 0, i))]);
    }
    const auto scrambled = permute_symmetric(band, shuffle);
    ASSERT_GT(bandwidth(scrambled), 5 * bw_orig);
    const auto perm = reverse_cuthill_mckee(scrambled);
    const auto restored = permute_symmetric(scrambled, perm);
    EXPECT_LT(bandwidth(restored), bandwidth(scrambled) / 4);
}

TEST(Rcm, PermuteSymmetricPreservesValues) {
    auto a = Csr<double>::from_triplets(
        3, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}, {2, 0, 4.0},
               {2, 2, 5.0}});
    const std::vector<index_type> perm{2, 0, 1};
    const auto b = permute_symmetric(a, perm);
    // b(i, j) = a(perm[i], perm[j])
    EXPECT_EQ(b.at(0, 0), 5.0);
    EXPECT_EQ(b.at(0, 1), 4.0);
    EXPECT_EQ(b.at(1, 0), 2.0);
    EXPECT_EQ(b.at(2, 2), 3.0);
    EXPECT_EQ(b.nnz(), a.nnz());
}

TEST(Rcm, VectorPermutationRoundTrip) {
    const std::vector<index_type> perm{2, 0, 3, 1};
    const std::vector<double> in{10, 20, 30, 40};
    std::vector<double> mid(4), back(4);
    permute_vector<double>(perm, in, std::span<double>(mid));
    EXPECT_EQ(mid[0], 30.0);
    EXPECT_EQ(mid[1], 10.0);
    unpermute_vector<double>(perm, mid, std::span<double>(back));
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(back[static_cast<std::size_t>(i)],
                  in[static_cast<std::size_t>(i)]);
    }
}

TEST(Rcm, HandlesDisconnectedComponents) {
    // Two disjoint 2-cliques and an isolated vertex.
    auto a = Csr<double>::from_triplets(
        5, 5,
        {{0, 0, 1.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 1.0},
         {2, 2, 1.0},
         {3, 3, 1.0}, {3, 4, 1.0}, {4, 3, 1.0}, {4, 4, 1.0}});
    const auto perm = reverse_cuthill_mckee(a);
    EXPECT_TRUE(is_permutation(perm, 5));
}

TEST(Rcm, SupervariableBlockingSurvivesRcm) {
    // The paper's point: RCM-like orderings keep nearby variables nearby,
    // so the block structure remains usable. A multi-dof stencil stays
    // exactly block-detectable because dofs of one node remain adjacent
    // under the symmetric permutation of node groups... verify that the
    // reordered matrix still partitions and the preconditioner pipeline
    // runs.
    const auto a = sparse::laplacian_2d<double>(8, 8, 4, 3);
    const auto perm = reverse_cuthill_mckee(a);
    const auto b = permute_symmetric(a, perm);
    BlockingOptions opts;
    opts.max_block_size = 16;
    const auto blocks = supervariable_blocking(b, opts);
    index_type sum = 0;
    for (const auto s : blocks) {
        sum += s;
        EXPECT_LE(s, 16);
    }
    EXPECT_EQ(sum, b.num_rows());
}

TEST(Rcm, RejectsRectangularAndBadPerms) {
    auto rect = Csr<double>::from_triplets(2, 3, {{0, 0, 1.0}});
    EXPECT_THROW(reverse_cuthill_mckee(rect), BadParameter);
    auto sq = Csr<double>::from_triplets(2, 2, {{0, 0, 1.0}, {1, 1, 1.0}});
    const std::vector<index_type> bad{0, 5};
    EXPECT_THROW(permute_symmetric(sq, bad), BadParameter);
}

}  // namespace
}  // namespace vbatch::blocking
