// Tests for the sub-warp packed kernels (2 problems per warp, m <= 16).
#include <gtest/gtest.h>

#include "core/packed_kernels.hpp"

namespace vbatch::core {
namespace {

class PackedSizes : public ::testing::TestWithParam<index_type> {};

TEST_P(PackedSizes, FactorsBitwiseMatchUnpacked) {
    const index_type m = GetParam();
    auto a_packed = BatchedMatrices<double>::random_general(
        make_uniform_layout(8, m), 400 + m);
    auto a_full = a_packed.clone();
    BatchedPivots p_packed(a_packed.layout_ptr()), p_full(a_full.layout_ptr());
    const auto res = getrf_batch_simt_packed(a_packed, p_packed);
    EXPECT_TRUE(res.status.ok());
    getrf_batch(a_full, p_full);
    for (size_type v = 0; v < a_full.layout().total_values(); ++v) {
        EXPECT_EQ(a_packed.data()[v], a_full.data()[v]) << v;
    }
    for (size_type v = 0; v < a_full.layout().total_rows(); ++v) {
        EXPECT_EQ(p_packed.span(0).data()[v], p_full.span(0).data()[v]);
    }
}

TEST_P(PackedSizes, SolvesBitwiseMatchUnpacked) {
    const index_type m = GetParam();
    auto a = BatchedMatrices<double>::random_general(
        make_uniform_layout(6, m), 500 + m);
    BatchedPivots perm(a.layout_ptr());
    getrf_batch(a, perm);
    auto b_packed = BatchedVectors<double>::random(a.layout_ptr(), 1);
    auto b_full = b_packed.clone();
    getrs_batch_simt_packed(a, perm, b_packed);
    TrsvOptions opts;
    getrs_batch(a, perm, b_full, opts);
    for (size_type v = 0; v < a.layout().total_rows(); ++v) {
        EXPECT_EQ(b_packed.data()[v], b_full.data()[v]);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PackedSizes,
                         ::testing::Values(1, 2, 4, 8, 11, 15, 16));

TEST(Packed, HalvesPerProblemIssues) {
    // The point of packing: two problems share every instruction slot.
    const index_type m = 16;
    auto a1 = BatchedMatrices<double>::random_general(
        make_uniform_layout(16, m), 3);
    auto a2 = a1.clone();
    BatchedPivots p1(a1.layout_ptr()), p2(a2.layout_ptr());
    const auto packed = getrf_batch_simt_packed(a1, p1);
    const auto full = getrf_batch_simt(a2, p2);
    EXPECT_LT(static_cast<double>(packed.stats.fp_instructions),
              0.6 * static_cast<double>(full.stats.fp_instructions));
    EXPECT_LT(static_cast<double>(packed.stats.shuffle_instructions),
              0.7 * static_cast<double>(full.stats.shuffle_instructions));
    EXPECT_LT(static_cast<double>(packed.stats.load_requests),
              0.6 * static_cast<double>(full.stats.load_requests));
}

TEST(Packed, OddBatchTailHandled) {
    const index_type m = 8;
    auto a = BatchedMatrices<double>::random_general(
        make_uniform_layout(7, m), 9);
    auto a_ref = a.clone();
    BatchedPivots p(a.layout_ptr()), p_ref(a_ref.layout_ptr());
    EXPECT_TRUE(getrf_batch_simt_packed(a, p).status.ok());
    getrf_batch(a_ref, p_ref);
    for (size_type v = 0; v < a.layout().total_values(); ++v) {
        EXPECT_EQ(a.data()[v], a_ref.data()[v]);
    }
}

TEST(Packed, RejectsOversizedAndVariableBatches) {
    BatchedMatrices<double> big(make_uniform_layout(4, 20));
    BatchedPivots pb(big.layout_ptr());
    EXPECT_THROW(getrf_batch_simt_packed(big, pb), BadParameter);
    BatchedMatrices<double> var(make_layout({4, 8}));
    BatchedPivots pv(var.layout_ptr());
    EXPECT_THROW(getrf_batch_simt_packed(var, pv), BadParameter);
}

TEST(Packed, SingularPairReported) {
    auto a = BatchedMatrices<double>::random_general(
        make_uniform_layout(4, 4), 5);
    // Zero out problem 1 -> its factorization breaks down.
    auto v1 = a.view(1);
    for (index_type j = 0; j < 4; ++j) {
        for (index_type i = 0; i < 4; ++i) {
            v1(i, j) = 0.0;
        }
    }
    BatchedPivots p(a.layout_ptr());
    const auto res = getrf_batch_simt_packed(a, p);
    EXPECT_EQ(res.status.failures, 1);
    EXPECT_EQ(res.status.first_failure, 1);
}

}  // namespace
}  // namespace vbatch::core
