// Tests for the warp-emulated Gauss-Jordan inversion / inverse apply.
#include <gtest/gtest.h>

#include "core/gje_simt.hpp"

namespace vbatch::core {
namespace {

class GjeSimtSizes : public ::testing::TestWithParam<index_type> {};

TEST_P(GjeSimtSizes, InversionBitwiseMatchesCpu) {
    const index_type m = GetParam();
    auto a_simt = BatchedMatrices<double>::random_general(
        make_uniform_layout(5, m), 600 + m);
    auto a_cpu = a_simt.clone();
    EXPECT_TRUE(gauss_jordan_batch_simt(a_simt).status.ok());
    GetrfOptions seq;
    seq.parallel = false;
    gauss_jordan_batch(a_cpu, seq);
    for (size_type v = 0; v < a_cpu.layout().total_values(); ++v) {
        EXPECT_EQ(a_simt.data()[v], a_cpu.data()[v]) << v;
    }
}

TEST_P(GjeSimtSizes, ApplyBitwiseMatchesCpu) {
    const index_type m = GetParam();
    auto inv = BatchedMatrices<double>::random_general(
        make_uniform_layout(4, m), 700 + m);
    auto b_simt = BatchedVectors<double>::random(inv.layout_ptr(), 3);
    auto b_cpu = b_simt.clone();
    apply_inverse_batch_simt(inv, b_simt);
    apply_inverse_batch(inv, b_cpu, /*parallel=*/false);
    for (size_type v = 0; v < inv.layout().total_rows(); ++v) {
        EXPECT_EQ(b_simt.data()[v], b_cpu.data()[v]);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GjeSimtSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 25, 32));

TEST(GjeSimt, SetupCostsMoreThanLuApplyCostsLess) {
    // The Section II.C trade-off in counters: GJE setup issues more work
    // than LU (2 m^3 vs 2/3 m^3 plus single-lane row scaling), while its
    // application avoids TRSV's divisions and per-step dependent loads.
    const index_type m = 32;
    auto a1 = BatchedMatrices<double>::random_diagonally_dominant(
        make_uniform_layout(4, m), 9);
    auto a2 = a1.clone();
    const auto gje = gauss_jordan_batch_simt(a1);
    BatchedPivots perm(a2.layout_ptr());
    const auto lu = getrf_batch_simt(a2, perm);
    EXPECT_GT(gje.stats.fp_instructions, lu.stats.fp_instructions);
    EXPECT_GT(gje.stats.useful_flops, 2 * lu.stats.useful_flops);

    auto b1 = BatchedVectors<double>::random(a1.layout_ptr(), 5);
    auto b2 = b1.clone();
    const auto gemv = apply_inverse_batch_simt(a1, b1);
    const auto trsv = getrs_batch_simt(a2, perm, b2);
    EXPECT_EQ(gemv.stats.div_instructions, 0);
    EXPECT_GT(trsv.stats.div_instructions, 0);
    EXPECT_LE(gemv.stats.load_requests, trsv.stats.load_requests);
}

TEST(GjeSimt, SingularBlockReported) {
    BatchedMatrices<double> a(make_uniform_layout(2, 3));
    auto v0 = a.view(0);
    for (index_type i = 0; i < 3; ++i) {
        v0(i, i) = 1.0;
    }
    const auto res = gauss_jordan_batch_simt(a);
    EXPECT_EQ(res.status.failures, 1);
    EXPECT_EQ(res.status.first_failure, 1);
}

}  // namespace
}  // namespace vbatch::core
