// Tests for the batched triangular solves (permute + lower + upper).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/blas2.hpp"
#include "blas/dense_matrix.hpp"
#include "blas/lapack.hpp"
#include "core/getrf.hpp"
#include "core/trsv.hpp"

namespace vbatch::core {
namespace {

TEST(ApplyPermutation, GathersThroughPerm) {
    std::vector<double> b{10, 20, 30, 40};
    std::vector<index_type> perm{2, 0, 3, 1};
    apply_permutation<double>(perm, std::span<double>(b));
    EXPECT_EQ(b[0], 30);
    EXPECT_EQ(b[1], 10);
    EXPECT_EQ(b[2], 40);
    EXPECT_EQ(b[3], 20);
}

TEST(Trsv, LowerUnitEagerAndLazyAgree) {
    const index_type m = 16;
    auto lu = DenseMatrix<double>::random(m, m, 7);
    std::vector<double> be(static_cast<std::size_t>(m)),
        bl(static_cast<std::size_t>(m));
    for (index_type i = 0; i < m; ++i) {
        be[static_cast<std::size_t>(i)] = std::cos(i * 1.7);
    }
    bl = be;
    trsv_lower_unit<double>(lu.view(), std::span<double>(be),
                            TrsvVariant::eager);
    trsv_lower_unit<double>(lu.view(), std::span<double>(bl),
                            TrsvVariant::lazy);
    for (index_type i = 0; i < m; ++i) {
        EXPECT_NEAR(be[static_cast<std::size_t>(i)],
                    bl[static_cast<std::size_t>(i)], 1e-12);
    }
}

TEST(Trsv, UpperEagerAndLazyAgree) {
    const index_type m = 16;
    auto lu = DenseMatrix<double>::random_diagonally_dominant(m, 9);
    std::vector<double> be(static_cast<std::size_t>(m)),
        bl(static_cast<std::size_t>(m));
    for (index_type i = 0; i < m; ++i) {
        be[static_cast<std::size_t>(i)] = std::sin(i + 0.5);
    }
    bl = be;
    trsv_upper<double>(lu.view(), std::span<double>(be), TrsvVariant::eager);
    trsv_upper<double>(lu.view(), std::span<double>(bl), TrsvVariant::lazy);
    for (index_type i = 0; i < m; ++i) {
        EXPECT_NEAR(be[static_cast<std::size_t>(i)],
                    bl[static_cast<std::size_t>(i)], 1e-10);
    }
}

class GetrsSizes
    : public ::testing::TestWithParam<std::tuple<index_type, TrsvVariant>> {
};

TEST_P(GetrsSizes, SolvesFactoredSystems) {
    const auto [m, variant] = GetParam();
    const size_type nb = 12;
    auto batch = BatchedMatrices<double>::random_general(
        make_uniform_layout(nb, m), 500 + m);
    auto original = batch.clone();
    BatchedPivots perm(batch.layout_ptr());
    ASSERT_TRUE(getrf_batch(batch, perm).ok());

    auto x_ref = BatchedVectors<double>::random(batch.layout_ptr(), 42);
    BatchedVectors<double> b(batch.layout_ptr());
    for (size_type i = 0; i < nb; ++i) {
        blas::gemv(1.0, original.view(i),
                   std::span<const double>(x_ref.span(i)), 0.0, b.span(i));
    }
    TrsvOptions opts;
    opts.variant = variant;
    getrs_batch(batch, perm, b, opts);
    for (size_type i = 0; i < nb; ++i) {
        for (index_type k = 0; k < m; ++k) {
            EXPECT_NEAR(b.span(i)[static_cast<std::size_t>(k)],
                        x_ref.span(i)[static_cast<std::size_t>(k)],
                        1e-8)
                << "entry " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndVariants, GetrsSizes,
    ::testing::Combine(::testing::Values<index_type>(1, 2, 4, 8, 16, 24, 32),
                       ::testing::Values(TrsvVariant::eager,
                                         TrsvVariant::lazy)));

TEST(Getrs, MatchesLapackSolve) {
    const index_type m = 12;
    auto dense = DenseMatrix<double>::random_diagonally_dominant(m, 5);
    auto batch = BatchedMatrices<double>(make_uniform_layout(1, m));
    auto v = batch.view(0);
    for (index_type j = 0; j < m; ++j) {
        for (index_type i = 0; i < m; ++i) {
            v(i, j) = dense(i, j);
        }
    }
    BatchedPivots perm(batch.layout_ptr());
    getrf_batch(batch, perm);
    std::vector<double> b(static_cast<std::size_t>(m), 1.0);
    auto b2 = b;
    getrs_single<double>(batch.view(0), perm.span(0), std::span<double>(b));
    ASSERT_EQ(lapack::gesv<double>(dense.view(), std::span<double>(b2)), 0);
    for (index_type i = 0; i < m; ++i) {
        EXPECT_NEAR(b[static_cast<std::size_t>(i)],
                    b2[static_cast<std::size_t>(i)], 1e-12);
    }
}

TEST(Getrs, VariableSizeBatch) {
    auto layout = make_layout({1, 3, 9, 27, 32});
    auto batch = BatchedMatrices<double>::random_diagonally_dominant(layout,
                                                                     8);
    auto original = batch.clone();
    BatchedPivots perm(layout);
    ASSERT_TRUE(getrf_batch(batch, perm).ok());
    auto x_ref = BatchedVectors<double>::random(layout, 17);
    BatchedVectors<double> b(layout);
    for (size_type i = 0; i < layout->count(); ++i) {
        blas::gemv(1.0, original.view(i),
                   std::span<const double>(x_ref.span(i)), 0.0, b.span(i));
    }
    getrs_batch(batch, perm, b);
    for (size_type i = 0; i < layout->count(); ++i) {
        for (std::size_t k = 0; k < b.span(i).size(); ++k) {
            EXPECT_NEAR(b.span(i)[k], x_ref.span(i)[k], 1e-9);
        }
    }
}

TEST(Getrs, PermutationFusedIntoLoadMatchesManualPipeline) {
    // getrs_single == laswp-style gather + two plain triangular solves.
    const index_type m = 10;
    auto batch = BatchedMatrices<double>::random_general(
        make_uniform_layout(1, m), 23);
    BatchedPivots perm(batch.layout_ptr());
    getrf_batch(batch, perm);
    std::vector<double> b(static_cast<std::size_t>(m));
    for (index_type i = 0; i < m; ++i) {
        b[static_cast<std::size_t>(i)] = i * i - 3.0;
    }
    auto manual = b;
    getrs_single<double>(batch.view(0), perm.span(0), std::span<double>(b));
    apply_permutation<double>(perm.span(0), std::span<double>(manual));
    trsv_lower_unit<double>(batch.view(0), std::span<double>(manual),
                            TrsvVariant::eager);
    trsv_upper<double>(batch.view(0), std::span<double>(manual),
                       TrsvVariant::eager);
    for (index_type i = 0; i < m; ++i) {
        EXPECT_EQ(b[static_cast<std::size_t>(i)],
                  manual[static_cast<std::size_t>(i)]);
    }
}

TEST(Getrs, MismatchedLayoutsThrow) {
    BatchedMatrices<double> lu(make_uniform_layout(2, 4));
    BatchedPivots perm(make_uniform_layout(2, 4));
    BatchedVectors<double> b(make_uniform_layout(3, 4));
    EXPECT_THROW(getrs_batch(lu, perm, b), BadParameter);
}

}  // namespace
}  // namespace vbatch::core
