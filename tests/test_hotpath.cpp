// Solver hot-path contracts: fused BLAS-1 kernels are bitwise identical
// to their unfused compositions, chunked reductions are bitwise stable
// under any work distribution, the Csr spmv partition survives structural
// mutation, the BlockJacobi apply performs zero heap allocations, and the
// thread pool's inline/nested fast paths behave.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <random>
#include <thread>
#include <vector>

#include "base/random.hpp"
#include "base/thread_pool.hpp"
#include "blas/blas1.hpp"
#include "blas/blas1_ref.hpp"
#include "blas/fused.hpp"
#include "precond/block_jacobi.hpp"
#include "solvers/cg.hpp"
#include "sparse/generators.hpp"

// ---------------------------------------------------------------------
// Global allocation counter (for the zero-allocation apply test). All
// other tests ignore it; the counter itself never allocates.
// ---------------------------------------------------------------------
namespace {
std::atomic<long> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) {
        return p;
    }
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                     (size + static_cast<std::size_t>(align) -
                                      1) /
                                         static_cast<std::size_t>(align) *
                                         static_cast<std::size_t>(align))) {
        return p;
    }
    throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
    return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

namespace vbatch {
namespace {

std::vector<double> random_vec(std::size_t n, std::uint64_t seed) {
    std::mt19937_64 eng(seed);
    std::vector<double> v(n);
    for (auto& x : v) {
        x = uniform(eng, -1.0, 1.0);
    }
    return v;
}

constexpr std::span<const double> cspan(const std::vector<double>& v) {
    return {v.data(), v.size()};
}

// Sizes straddling the chunk boundary: single-chunk (== textbook serial),
// exactly one chunk, and several chunks with a ragged tail.
const std::size_t kSizes[] = {1, 100, blas::blas1_chunk,
                              3 * blas::blas1_chunk + 17};

// ---------------------------------------------------------------------
// Chunked BLAS-1 vs the serial reference loops
// ---------------------------------------------------------------------

TEST(ChunkedBlas1, MatchesSerialReferenceWithinOneChunk) {
    // n <= blas1_chunk: one chunk IS the serial loop, so results must be
    // bitwise equal to the reference for every op.
    const std::size_t n = blas::blas1_chunk;
    const auto x = random_vec(n, 1);
    auto y1 = random_vec(n, 2);
    auto y2 = y1;
    blas::axpy(0.7, cspan(x), std::span<double>(y1));
    blas::ref::axpy(0.7, cspan(x), std::span<double>(y2));
    EXPECT_EQ(y1, y2);
    blas::xpby(cspan(x), -1.3, std::span<double>(y1));
    blas::ref::xpby(cspan(x), -1.3, std::span<double>(y2));
    EXPECT_EQ(y1, y2);
    EXPECT_EQ(blas::dot(cspan(x), cspan(y1)),
              blas::ref::dot(cspan(x), cspan(y2)));
    EXPECT_EQ(blas::nrm2(cspan(x)), blas::ref::nrm2(cspan(x)));
    EXPECT_EQ(blas::asum(cspan(x)), blas::ref::asum(cspan(x)));
}

TEST(ChunkedBlas1, DotMatchesManualChunkOrderCombine) {
    // Multi-chunk dot must equal the fixed-order combination of per-chunk
    // serial partials -- the definition of the determinism contract.
    for (const std::size_t n : kSizes) {
        const auto x = random_vec(n, 3);
        const auto y = random_vec(n, 4);
        double expected = 0.0;
        for (std::size_t lo = 0; lo < n; lo += blas::blas1_chunk) {
            const std::size_t hi = std::min(lo + blas::blas1_chunk, n);
            double partial = 0.0;
            for (std::size_t i = lo; i < hi; ++i) {
                partial += x[i] * y[i];
            }
            expected += partial;
        }
        EXPECT_EQ(blas::dot(cspan(x), cspan(y)), expected) << "n=" << n;
    }
}

// ---------------------------------------------------------------------
// Fused kernels vs their unfused compositions (bitwise)
// ---------------------------------------------------------------------

TEST(FusedBlas1, ResidualNorm2MatchesUnfused) {
    for (const std::size_t n : kSizes) {
        const auto b = random_vec(n, 5);
        auto r1 = random_vec(n, 6);
        auto r2 = r1;
        const double norm =
            blas::fused_residual_norm2(cspan(b), std::span<double>(r1));
        for (std::size_t i = 0; i < n; ++i) {
            r2[i] = b[i] - r2[i];
        }
        EXPECT_EQ(r1, r2) << "n=" << n;
        EXPECT_EQ(norm, blas::nrm2(cspan(r2))) << "n=" << n;
    }
}

TEST(FusedBlas1, CgUpdateMatchesUnfused) {
    for (const std::size_t n : kSizes) {
        const auto p = random_vec(n, 7);
        const auto q = random_vec(n, 8);
        auto x1 = random_vec(n, 9);
        auto r1 = random_vec(n, 10);
        auto x2 = x1;
        auto r2 = r1;
        const double alpha = 0.37;
        const double norm = blas::fused_cg_update(
            alpha, cspan(p), cspan(q), std::span<double>(x1),
            std::span<double>(r1));
        blas::axpy(alpha, cspan(p), std::span<double>(x2));
        blas::axpy(-alpha, cspan(q), std::span<double>(r2));
        EXPECT_EQ(x1, x2) << "n=" << n;
        EXPECT_EQ(r1, r2) << "n=" << n;
        EXPECT_EQ(norm, blas::nrm2(cspan(r2))) << "n=" << n;
    }
}

TEST(FusedBlas1, BicgstabKernelsMatchUnfused) {
    for (const std::size_t n : kSizes) {
        const auto r = random_vec(n, 11);
        const auto v = random_vec(n, 12);
        const double beta = 1.7, omega = 0.4, alpha = -0.9;
        auto p1 = random_vec(n, 13);
        auto p2 = p1;
        blas::fused_bicg_p_update(beta, omega, cspan(r), cspan(v),
                                  std::span<double>(p1));
        for (std::size_t i = 0; i < n; ++i) {
            p2[i] = r[i] + beta * (p2[i] - omega * v[i]);
        }
        EXPECT_EQ(p1, p2) << "n=" << n;

        std::vector<double> s1(n), s2(n);
        const double norms = blas::fused_sub_axpy_norm2(
            alpha, cspan(r), cspan(v), std::span<double>(s1));
        for (std::size_t i = 0; i < n; ++i) {
            s2[i] = r[i] - alpha * v[i];
        }
        EXPECT_EQ(s1, s2) << "n=" << n;
        EXPECT_EQ(norms, blas::nrm2(cspan(s2))) << "n=" << n;

        const auto t = random_vec(n, 14);
        const auto [tt, ts] = blas::fused_dot2(cspan(t), cspan(t), cspan(s1));
        EXPECT_EQ(tt, blas::dot(cspan(t), cspan(t))) << "n=" << n;
        EXPECT_EQ(ts, blas::dot(cspan(t), cspan(s1))) << "n=" << n;

        auto x1 = random_vec(n, 15);
        auto r1 = random_vec(n, 16);
        auto x2 = x1;
        auto r2 = r1;
        const auto phat = random_vec(n, 17);
        const auto shat = random_vec(n, 18);
        const double norm = blas::fused_bicg_xr_update(
            alpha, cspan(phat), omega, cspan(shat), cspan(s1), cspan(t),
            std::span<double>(x1), std::span<double>(r1));
        for (std::size_t i = 0; i < n; ++i) {
            x2[i] += alpha * phat[i] + omega * shat[i];
            r2[i] = s1[i] - omega * t[i];
        }
        EXPECT_EQ(x1, x2) << "n=" << n;
        EXPECT_EQ(r1, r2) << "n=" << n;
        EXPECT_EQ(norm, blas::nrm2(cspan(r2))) << "n=" << n;
    }
}

TEST(FusedBlas1, AxpyNorm2AndAxpbyAndDivCopyMatchUnfused) {
    for (const std::size_t n : kSizes) {
        const auto x = random_vec(n, 19);
        auto y1 = random_vec(n, 20);
        auto y2 = y1;
        const double norm =
            blas::fused_axpy_norm2(-0.6, cspan(x), std::span<double>(y1));
        blas::axpy(-0.6, cspan(x), std::span<double>(y2));
        EXPECT_EQ(y1, y2) << "n=" << n;
        EXPECT_EQ(norm, blas::nrm2(cspan(y2))) << "n=" << n;

        blas::fused_axpby(0.3, cspan(x), -1.1, std::span<double>(y1));
        for (std::size_t i = 0; i < n; ++i) {
            y2[i] = 0.3 * x[i] + -1.1 * y2[i];
        }
        EXPECT_EQ(y1, y2) << "n=" << n;

        std::vector<double> z1(n), z2(n);
        blas::fused_div_copy(cspan(x), 3.7, std::span<double>(z1));
        for (std::size_t i = 0; i < n; ++i) {
            z2[i] = x[i] / 3.7;
        }
        EXPECT_EQ(z1, z2) << "n=" << n;
    }
}

TEST(FusedBlas1, SmoothingKernelsMatchUnfused) {
    for (const std::size_t n : kSizes) {
        const auto r = random_vec(n, 21);
        const auto x = random_vec(n, 22);
        auto rs1 = random_vec(n, 23);
        auto xs1 = random_vec(n, 24);
        auto rs2 = rs1;
        auto xs2 = xs1;
        const auto [dd, rd] = blas::fused_smoothing_dots(cspan(rs1),
                                                         cspan(r));
        {
            // Unfused composition with the same chunked reductions.
            std::vector<double> d(n);
            for (std::size_t i = 0; i < n; ++i) {
                d[i] = rs2[i] - r[i];
            }
            EXPECT_EQ(dd, blas::dot(cspan(d), cspan(d))) << "n=" << n;
            EXPECT_EQ(rd, blas::dot(cspan(rs2), cspan(d))) << "n=" << n;
        }
        const double gamma = 0.42;
        const double norm = blas::fused_smooth_update(
            gamma, cspan(r), cspan(x), std::span<double>(rs1),
            std::span<double>(xs1));
        for (std::size_t i = 0; i < n; ++i) {
            rs2[i] -= gamma * (rs2[i] - r[i]);
            xs2[i] -= gamma * (xs2[i] - x[i]);
        }
        EXPECT_EQ(rs1, rs2) << "n=" << n;
        EXPECT_EQ(xs1, xs2) << "n=" << n;
        EXPECT_EQ(norm, blas::nrm2(cspan(rs2))) << "n=" << n;
    }
}

TEST(FusedBlas1, MultiDotMatchesPerColumnDots) {
    const size_type n = static_cast<size_type>(2 * blas::blas1_chunk + 31);
    const index_type cols = 5;
    const auto basis =
        random_vec(static_cast<std::size_t>(n) * cols, 25);
    const auto x = random_vec(static_cast<std::size_t>(n), 26);
    std::vector<double> out(cols);
    blas::multi_dot(basis.data(), n, cols, x.data(), out.data());
    for (index_type c = 0; c < cols; ++c) {
        const std::span<const double> col{
            basis.data() + static_cast<std::size_t>(c) * n,
            static_cast<std::size_t>(n)};
        EXPECT_EQ(out[static_cast<std::size_t>(c)], blas::dot(col, cspan(x)))
            << "col=" << c;
    }
}

TEST(FusedBlas1, MultiAxpyMatchesSequentialAxpys) {
    const size_type n = static_cast<size_type>(2 * blas::blas1_chunk + 31);
    const index_type cols = 5;
    const auto basis =
        random_vec(static_cast<std::size_t>(n) * cols, 27);
    const std::vector<double> coeff{0.3, -1.2, 0.05, 2.0, -0.7};
    auto z1 = random_vec(static_cast<std::size_t>(n), 28);
    auto z2 = z1;
    blas::multi_axpy(basis.data(), n, cols, coeff.data(), z1.data());
    for (index_type c = 0; c < cols; ++c) {
        const std::span<const double> col{
            basis.data() + static_cast<std::size_t>(c) * n,
            static_cast<std::size_t>(n)};
        blas::axpy(coeff[static_cast<std::size_t>(c)], col,
                   std::span<double>(z2));
    }
    EXPECT_EQ(z1, z2);
}

// ---------------------------------------------------------------------
// Csr spmv partition caching and invalidation
// ---------------------------------------------------------------------

TEST(SpmvPartition, CoversAllRowsStrictlyIncreasing) {
    const auto a = sparse::circuit_like<double>(500, 5, 4, 120, 99);
    const auto parts = a.spmv_partition();
    ASSERT_GE(parts.size(), 2u);
    EXPECT_EQ(parts.front(), 0);
    EXPECT_EQ(parts.back(), a.num_rows());
    for (std::size_t p = 0; p + 1 < parts.size(); ++p) {
        EXPECT_LT(parts[p], parts[p + 1]);
    }
}

TEST(SpmvPartition, BalancesSkewedNnz) {
    // Hub rows concentrate the nnz; a row-count split would put all hubs
    // in one part. The nnz-balanced split must keep every part at or
    // under one fair share plus one row's worth of slack.
    const index_type n = 4000;
    const auto a = sparse::circuit_like<double>(n, 4, 8, 600, 7);
    const auto parts = a.spmv_partition();
    if (parts.size() <= 2) {
        GTEST_SKIP() << "single-part pool; nothing to balance";
    }
    index_type max_row = 0;
    for (index_type i = 0; i < n; ++i) {
        max_row = std::max(max_row, a.row_nnz(i));
    }
    const auto nparts = static_cast<size_type>(parts.size()) - 1;
    const size_type fair = a.nnz() / nparts;
    const auto rp = a.row_ptrs();
    for (size_type p = 0; p < nparts; ++p) {
        const size_type part_nnz =
            rp[static_cast<std::size_t>(parts[p + 1])] -
            rp[static_cast<std::size_t>(parts[p])];
        // Guaranteed bound: one fair share (+1 for the floored goals) plus
        // at most one row's worth of boundary slack.
        EXPECT_LE(part_nnz, fair + static_cast<size_type>(max_row) + 1)
            << "part " << p;
    }
}

TEST(SpmvPartition, RebuiltAfterStructuralMutation) {
    // Give most rows a tiny entry so drop_small_entries changes the nnz
    // distribution substantially, then check the partition was rebuilt
    // for the new structure and spmv is correct (no stale partition).
    const index_type n = 3000;
    auto a = sparse::circuit_like<double>(n, 6, 6, 400, 3);
    auto vals = a.values();
    std::mt19937_64 eng(5);
    for (auto& v : vals) {
        if (uniform(eng, 0.0, 1.0) < 0.5) {
            v = 1e-30;
        }
    }
    const auto before_nnz = a.nnz();
    a.drop_small_entries(1e-20);
    ASSERT_LT(a.nnz(), before_nnz);
    const auto parts = a.spmv_partition();
    EXPECT_EQ(parts.front(), 0);
    EXPECT_EQ(parts.back(), n);
    for (std::size_t p = 0; p + 1 < parts.size(); ++p) {
        EXPECT_LT(parts[p], parts[p + 1]);
    }
    // spmv against a straightforward serial reference on the new structure.
    const auto x = random_vec(static_cast<std::size_t>(n), 30);
    std::vector<double> y(static_cast<std::size_t>(n));
    a.spmv(cspan(x), std::span<double>(y));
    const auto rp = a.row_ptrs();
    const auto ci = a.col_idxs();
    const auto va = a.values();
    for (index_type i = 0; i < n; ++i) {
        double acc = 0.0;
        for (auto p = rp[static_cast<std::size_t>(i)];
             p < rp[static_cast<std::size_t>(i) + 1]; ++p) {
            acc += va[static_cast<std::size_t>(p)] *
                   x[static_cast<std::size_t>(ci[static_cast<std::size_t>(p)])];
        }
        ASSERT_EQ(y[static_cast<std::size_t>(i)], acc) << "row " << i;
    }
}

TEST(SpmvPartition, SetValuesKeepsStructureAndPartition) {
    auto a = sparse::circuit_like<double>(600, 5, 3, 90, 12);
    const std::vector<size_type> before(a.spmv_partition().begin(),
                                        a.spmv_partition().end());
    std::vector<double> nv(static_cast<std::size_t>(a.nnz()), 2.5);
    a.set_values(std::span<const double>(nv));
    EXPECT_EQ(a.values()[0], 2.5);
    const std::vector<size_type> after(a.spmv_partition().begin(),
                                       a.spmv_partition().end());
    EXPECT_EQ(before, after);
}

// ---------------------------------------------------------------------
// Zero-allocation BlockJacobi apply
// ---------------------------------------------------------------------

TEST(BlockJacobiApply, PerformsNoHeapAllocations) {
    for (const auto backend : {precond::BlockJacobiBackend::lu,
                               precond::BlockJacobiBackend::lu_simd}) {
        const auto a = sparse::laplacian_2d<double>(40, 40);
        precond::BlockJacobiOptions opts;
        opts.backend = backend;
        opts.max_block_size = 12;
        const precond::BlockJacobi<double> prec(a, opts);
        const auto nz = static_cast<std::size_t>(a.num_rows());
        const auto r = random_vec(nz, 31);
        std::vector<double> z(nz);
        // Warm-up: first-use metric counters insert map nodes once.
        prec.apply(cspan(r), std::span<double>(z));
        const long before = g_allocations.load(std::memory_order_relaxed);
        for (int rep = 0; rep < 10; ++rep) {
            prec.apply(cspan(r), std::span<double>(z));
        }
        const long after = g_allocations.load(std::memory_order_relaxed);
        EXPECT_EQ(after - before, 0)
            << backend_name(backend) << ": apply allocated";
    }
}

TEST(BlockJacobiApply, SimdPathMatchesScalarBackendBitwise) {
    const auto a = sparse::circuit_like<double>(900, 5, 4, 60, 21);
    precond::BlockJacobiOptions scalar_opts;
    scalar_opts.backend = precond::BlockJacobiBackend::lu;
    const precond::BlockJacobi<double> scalar(a, scalar_opts);
    precond::BlockJacobiOptions simd_opts;
    simd_opts.backend = precond::BlockJacobiBackend::lu_simd;
    const precond::BlockJacobi<double> simd(a, simd_opts);
    const auto nz = static_cast<std::size_t>(a.num_rows());
    const auto r = random_vec(nz, 32);
    std::vector<double> z1(nz), z2(nz);
    scalar.apply(cspan(r), std::span<double>(z1));
    simd.apply(cspan(r), std::span<double>(z2));
    EXPECT_EQ(z1, z2);
    // Applying twice through the persistent workspace must be idempotent.
    std::vector<double> z3(nz);
    simd.apply(cspan(r), std::span<double>(z3));
    EXPECT_EQ(z2, z3);
}

// ---------------------------------------------------------------------
// Thread pool fast paths
// ---------------------------------------------------------------------

TEST(ThreadPoolFastPath, SmallRangeRunsInline) {
    ThreadPool pool(4);
    const auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen(3);
    pool.parallel_for(
        0, 3, [&](size_type i) {
            seen[static_cast<std::size_t>(i)] = std::this_thread::get_id();
        },
        8);  // n <= grain: must not dispatch
    for (const auto& id : seen) {
        EXPECT_EQ(id, caller);
    }
}

TEST(ThreadPoolFastPath, NestedParallelForRunsInlineWithoutDeadlock) {
    // Sharing mode: the single job slot is not reentrant, so a nested
    // call must degrade to sequential execution (deadlock otherwise).
    ThreadPool pool(4, SchedMode::sharing);
    std::atomic<int> inner_total{0};
    std::atomic<int> marked_worker{0};
    pool.parallel_for(
        0, 8,
        [&](size_type) {
            if (ThreadPool::in_worker()) {
                marked_worker.fetch_add(1, std::memory_order_relaxed);
            }
            pool.parallel_for(
                0, 4,
                [&](size_type) {
                    inner_total.fetch_add(1, std::memory_order_relaxed);
                },
                1);
        },
        1);
    EXPECT_EQ(marked_worker.load(), 8);
    EXPECT_EQ(inner_total.load(), 32);
    EXPECT_FALSE(ThreadPool::in_worker());
}

TEST(ThreadPoolFastPath, NestedParallelForDispatchesUnderStealing) {
    // Stealing mode: a nested call splits into stealable half-ranges
    // instead of inlining. Every (outer, inner) pair must still run
    // exactly once, with no deadlock between the nested joins.
    ThreadPool pool(4, SchedMode::stealing);
    constexpr int outer = 16;
    constexpr int inner = 64;
    std::vector<std::atomic<int>> hits(
        static_cast<std::size_t>(outer * inner));
    pool.parallel_for(
        0, outer,
        [&](size_type i) {
            EXPECT_TRUE(ThreadPool::in_worker());
            pool.parallel_for(
                0, inner,
                [&](size_type j) {
                    hits[static_cast<std::size_t>(i * inner + j)]
                        .fetch_add(1, std::memory_order_relaxed);
                },
                1);
        },
        1);
    for (const auto& h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
    EXPECT_FALSE(ThreadPool::in_worker());
}

TEST(ThreadPoolFastPath, GlobalPoolSolvesAreDeterministicInProcess) {
    // Two identical CG solves through the full hot path (spmv + fused
    // BLAS-1 + block-Jacobi apply) must agree bitwise.
    const auto a = sparse::circuit_like<double>(2000, 5, 4, 100, 77);
    precond::BlockJacobiOptions popts;
    popts.backend = precond::BlockJacobiBackend::lu_simd;
    const precond::BlockJacobi<double> prec(a, popts);
    const auto nz = static_cast<std::size_t>(a.num_rows());
    const auto b = random_vec(nz, 33);
    std::vector<double> x1(nz, 0.0), x2(nz, 0.0);
    solvers::SolverOptions sopts;
    sopts.max_iters = 60;
    sopts.rel_tol = 1e-10;
    solvers::cg(a, cspan(b), std::span<double>(x1), prec, sopts);
    solvers::cg(a, cspan(b), std::span<double>(x2), prec, sopts);
    EXPECT_EQ(x1, x2);
}

}  // namespace
}  // namespace vbatch
