// Tests for the warp-emulated kernels: numerical equivalence with the CPU
// backend (bitwise) and the instruction/transaction properties the paper's
// performance discussion relies on.
#include <gtest/gtest.h>

#include <vector>

#include "core/simt_kernels.hpp"

namespace vbatch::core {
namespace {

class SimtSizes : public ::testing::TestWithParam<index_type> {};

TEST_P(SimtSizes, GetrfWarpBitwiseMatchesCpu) {
    const index_type m = GetParam();
    auto a_simt = BatchedMatrices<double>::random_general(
        make_uniform_layout(6, m), 50 + m);
    auto a_cpu = a_simt.clone();
    BatchedPivots p_simt(a_simt.layout_ptr()), p_cpu(a_cpu.layout_ptr());
    const auto result = getrf_batch_simt(a_simt, p_simt);
    EXPECT_TRUE(result.status.ok());
    getrf_batch(a_cpu, p_cpu);
    for (size_type i = 0; i < a_simt.layout().total_values(); ++i) {
        EXPECT_EQ(a_simt.data()[i], a_cpu.data()[i]) << "value " << i;
    }
    for (size_type b = 0; b < 6; ++b) {
        for (index_type k = 0; k < m; ++k) {
            EXPECT_EQ(p_simt.span(b)[static_cast<std::size_t>(k)],
                      p_cpu.span(b)[static_cast<std::size_t>(k)]);
        }
    }
}

TEST_P(SimtSizes, GetrsWarpBitwiseMatchesCpu) {
    const index_type m = GetParam();
    auto a = BatchedMatrices<double>::random_general(
        make_uniform_layout(4, m), 150 + m);
    BatchedPivots perm(a.layout_ptr());
    getrf_batch(a, perm);
    auto b_simt = BatchedVectors<double>::random(a.layout_ptr(), 4);
    auto b_cpu = b_simt.clone();
    getrs_batch_simt(a, perm, b_simt);
    TrsvOptions opts;
    getrs_batch(a, perm, b_cpu, opts);
    for (size_type i = 0; i < a.layout().total_rows(); ++i) {
        EXPECT_EQ(b_simt.data()[i], b_cpu.data()[i]);
    }
}

TEST_P(SimtSizes, GaussHuardWarpBitwiseMatchesCpu) {
    const index_type m = GetParam();
    for (const auto storage :
         {GhStorage::standard, GhStorage::transposed}) {
        auto a_simt = BatchedMatrices<double>::random_general(
            make_uniform_layout(4, m), 250 + m);
        auto a_cpu = a_simt.clone();
        BatchedPivots p_simt(a_simt.layout_ptr()), p_cpu(a_cpu.layout_ptr());
        EXPECT_TRUE(
            gauss_huard_batch_simt(a_simt, p_simt, storage).status.ok());
        gauss_huard_batch(a_cpu, p_cpu, storage);
        for (size_type i = 0; i < a_simt.layout().total_values(); ++i) {
            EXPECT_EQ(a_simt.data()[i], a_cpu.data()[i]);
        }
        auto b_simt = BatchedVectors<double>::random(a_simt.layout_ptr(), 8);
        auto b_cpu = b_simt.clone();
        gauss_huard_solve_batch_simt(a_simt, p_simt, b_simt, storage);
        gauss_huard_solve_batch(a_cpu, p_cpu, b_cpu, storage);
        for (size_type i = 0; i < a_simt.layout().total_rows(); ++i) {
            EXPECT_EQ(b_simt.data()[i], b_cpu.data()[i]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SimtSizes,
                         ::testing::Values(1, 2, 4, 8, 15, 16, 23, 32));

TEST(SimtStats, PaddedLuExecutesMoreThanUsefulBelow32) {
    // The eager LU sweeps the padded trailing block: for m < 32 the issued
    // FP work clearly exceeds the useful flops (Section IV.B).
    auto a = BatchedMatrices<double>::random_general(
        make_uniform_layout(8, 16), 1);
    BatchedPivots p(a.layout_ptr());
    const auto res = getrf_batch_simt(a, p);
    const auto& s = res.stats;
    // Each fnma issue covers 32 lanes -> potential flops = 2*32*issues.
    const double potential = 2.0 * 32 * static_cast<double>(
        s.fp_instructions);
    EXPECT_GT(potential, 2.5 * static_cast<double>(s.useful_flops));
}

TEST(SimtStats, LuBeatsGhInIssuesAt32ButNotAt16) {
    // Instruction-count crossover between eager (right-looking) LU and
    // lazy GH on padded warps -- the mechanism behind Fig. 4/5.
    const auto issues = [](index_type m) {
        auto a = BatchedMatrices<double>::random_general(
            make_uniform_layout(4, m), 2);
        BatchedPivots p(a.layout_ptr());
        auto a2 = a.clone();
        BatchedPivots p2(a2.layout_ptr());
        const auto lu = getrf_batch_simt(a, p);
        const auto gh = gauss_huard_batch_simt(a2, p2);
        return std::pair{lu.stats.fp_instructions,
                         gh.stats.fp_instructions};
    };
    const auto [lu16, gh16] = issues(16);
    EXPECT_GT(lu16, gh16);  // padding penalty at m = 16
    const auto [lu32, gh32] = issues(32);
    EXPECT_LT(lu32, gh32);  // eager LU wins at the full warp size
}

TEST(SimtStats, GhTransposedWritesAreNonCoalesced) {
    const index_type m = 32;
    auto a1 = BatchedMatrices<double>::random_general(
        make_uniform_layout(4, m), 3);
    auto a2 = a1.clone();
    BatchedPivots p1(a1.layout_ptr()), p2(a2.layout_ptr());
    const auto gh = gauss_huard_batch_simt(a1, p1, GhStorage::standard);
    const auto ght = gauss_huard_batch_simt(a2, p2, GhStorage::transposed);
    // GH-T pays non-coalesced stores in the factorization. The L2 write
    // combiner keeps the DRAM traffic equal, so the cost shows up as LSU
    // replays (the few-percent slowdown of the paper's Fig. 5).
    EXPECT_GT(ght.stats.store_replays, 3 * gh.stats.store_replays);
    EXPECT_NEAR(static_cast<double>(ght.stats.store_transactions),
                static_cast<double>(gh.stats.store_transactions),
                0.25 * static_cast<double>(gh.stats.store_transactions));
}

TEST(SimtStats, GhSolveReadsAreNonCoalescedOnlyInStandardStorage) {
    const index_type m = 32;
    auto a1 = BatchedMatrices<double>::random_general(
        make_uniform_layout(4, m), 5);
    auto a2 = a1.clone();
    BatchedPivots p1(a1.layout_ptr()), p2(a2.layout_ptr());
    gauss_huard_batch(a1, p1, GhStorage::standard);
    gauss_huard_batch(a2, p2, GhStorage::transposed);
    auto b1 = BatchedVectors<double>::random(a1.layout_ptr(), 6);
    auto b2 = b1.clone();
    const auto gh = gauss_huard_solve_batch_simt(a1, p1, b1,
                                                 GhStorage::standard);
    const auto ght = gauss_huard_solve_batch_simt(a2, p2, b2,
                                                  GhStorage::transposed);
    // The Jordan-column reads are strided in GH's row-major layout; GH-T
    // serves everything coalesced (paper: ~2x faster GH-T solves at m=32).
    EXPECT_GT(gh.stats.load_transactions, 2 * ght.stats.load_transactions);
}

TEST(SimtStats, LazyTrsvLoadsMoreTransactionsThanEager) {
    const index_type m = 32;
    auto a = BatchedMatrices<double>::random_general(
        make_uniform_layout(4, m), 7);
    BatchedPivots perm(a.layout_ptr());
    getrf_batch(a, perm);
    auto b1 = BatchedVectors<double>::random(a.layout_ptr(), 9);
    auto b2 = b1.clone();
    const auto eager = getrs_batch_simt(a, perm, b1, TrsvVariant::eager);
    const auto lazy = getrs_batch_simt(a, perm, b2, TrsvVariant::lazy);
    EXPECT_GT(lazy.stats.load_transactions,
              2 * eager.stats.load_transactions);
    // And the lazy variant needs the shuffle reductions.
    EXPECT_GT(lazy.stats.shuffle_instructions,
              eager.stats.shuffle_instructions);
}

TEST(SimtStats, FactorizationReadsMatrixOnce) {
    // "it is possible to read the system matrix only once": load requests
    // = m column loads (+1 for nothing else) per problem.
    const index_type m = 24;
    auto a = BatchedMatrices<double>::random_general(
        make_uniform_layout(1, m), 8);
    BatchedPivots p(a.layout_ptr());
    const auto res = getrf_batch_simt(a, p);
    EXPECT_EQ(res.stats.load_requests, m);
    // Writeback: m factor columns + 1 pivot store.
    EXPECT_EQ(res.stats.store_requests, m + 1);
}

TEST(SimtBatch, SamplingExtrapolatesCounts) {
    auto a = BatchedMatrices<double>::random_general(
        make_uniform_layout(40, 8), 10);
    BatchedPivots p(a.layout_ptr());
    SimtBatchOptions opts;
    opts.sample_limit = 4;
    const auto sampled = getrf_batch_simt(a, p, opts);
    EXPECT_EQ(sampled.emulated, 4);
    EXPECT_EQ(sampled.total, 40);
    auto a2 = BatchedMatrices<double>::random_general(
        make_uniform_layout(40, 8), 10);
    BatchedPivots p2(a2.layout_ptr());
    const auto full = getrf_batch_simt(a2, p2);
    EXPECT_EQ(sampled.extrapolated().fp_instructions,
              full.stats.fp_instructions);
    EXPECT_EQ(sampled.extrapolated().load_transactions,
              full.stats.load_transactions);
}

TEST(SimtKernels, SingularBlockReported) {
    BatchedMatrices<double> a(make_uniform_layout(2, 4));
    auto v1 = a.view(1);
    for (index_type i = 0; i < 4; ++i) {
        v1(i, i) = 1.0;
    }
    BatchedPivots p(a.layout_ptr());
    const auto res = getrf_batch_simt(a, p);
    EXPECT_EQ(res.status.failures, 1);
    EXPECT_EQ(res.status.first_failure, 0);
}

}  // namespace
}  // namespace vbatch::core
