// Tests for supervariable blocking.
#include "base/exception.hpp"
#include <gtest/gtest.h>

#include <numeric>

#include "blocking/supervariable.hpp"
#include "sparse/generators.hpp"

namespace vbatch::blocking {
namespace {

using sparse::Csr;
using sparse::Triplet;

TEST(FindSupervariables, DetectsIdenticalPatterns) {
    // Rows 0-1 share a pattern, rows 2-4 share another, row 5 is alone.
    std::vector<Triplet<double>> t;
    for (index_type r : {0, 1}) {
        t.push_back({r, 0, 1.0});
        t.push_back({r, 1, 1.0});
    }
    for (index_type r : {2, 3, 4}) {
        t.push_back({r, 2, 1.0});
        t.push_back({r, 3, 1.0});
        t.push_back({r, 4, 1.0});
    }
    t.push_back({5, 5, 1.0});
    const auto a = Csr<double>::from_triplets(6, 6, std::move(t));
    const auto sv = find_supervariables(a);
    ASSERT_EQ(sv.size(), 3u);
    EXPECT_EQ(sv[0], 2);
    EXPECT_EQ(sv[1], 3);
    EXPECT_EQ(sv[2], 1);
}

TEST(FindSupervariables, MultiDofStencilRecoversDofBlocks) {
    const index_type dofs = 4;
    const auto a = sparse::laplacian_2d<double>(6, 6, dofs);
    const auto sv = find_supervariables(a);
    // All dofs of one node share the pattern; different nodes differ.
    for (const auto s : sv) {
        EXPECT_EQ(s, dofs);
    }
    EXPECT_EQ(std::accumulate(sv.begin(), sv.end(), index_type{0}),
              a.num_rows());
}

TEST(Blocking, PartitionsMatrixAndRespectsBound) {
    const auto a = sparse::laplacian_2d<double>(10, 10, 3);
    for (const index_type bound : {8, 12, 16, 24, 32}) {
        BlockingOptions opts;
        opts.max_block_size = bound;
        const auto blocks = supervariable_blocking(a, opts);
        index_type sum = 0;
        for (const auto b : blocks) {
            EXPECT_GE(b, 1);
            EXPECT_LE(b, bound);
            sum += b;
        }
        EXPECT_EQ(sum, a.num_rows());
    }
}

TEST(Blocking, AgglomeratesAdjacentSupervariables) {
    // dofs=3 nodes with bound 8: two nodes (6 rows) fit, a third does not.
    const auto a = sparse::laplacian_2d<double>(4, 4, 3);
    BlockingOptions opts;
    opts.max_block_size = 8;
    const auto blocks = supervariable_blocking(a, opts);
    for (const auto b : blocks) {
        EXPECT_EQ(b % 3, 0) << "blocks are whole supervariables";
        EXPECT_LE(b, 8);
    }
    EXPECT_EQ(blocks.front(), 6);
}

TEST(Blocking, SplitsOversizedSupervariables) {
    // A dense 40-row matrix is one supervariable of size 40 > 32.
    std::vector<Triplet<double>> t;
    for (index_type i = 0; i < 40; ++i) {
        for (index_type j = 0; j < 40; ++j) {
            t.push_back({i, j, 1.0});
        }
    }
    const auto a = Csr<double>::from_triplets(40, 40, std::move(t));
    BlockingOptions opts;
    opts.max_block_size = 32;
    const auto blocks = supervariable_blocking(a, opts);
    ASSERT_EQ(blocks.size(), 2u);
    EXPECT_EQ(blocks[0], 32);
    EXPECT_EQ(blocks[1], 8);
}

TEST(Blocking, ChunkingAblationIgnoresPattern) {
    const auto a = sparse::laplacian_2d<double>(5, 5, 4);
    BlockingOptions opts;
    opts.max_block_size = 16;
    opts.detect_supervariables = false;
    const auto blocks = supervariable_blocking(a, opts);
    // Plain chunking: all blocks are the bound except possibly the last.
    for (std::size_t i = 0; i + 1 < blocks.size(); ++i) {
        EXPECT_EQ(blocks[i], 16);
    }
}

TEST(Blocking, BoundValidation) {
    const auto a = sparse::laplacian_2d<double>(3, 3, 1);
    BlockingOptions opts;
    opts.max_block_size = 0;
    EXPECT_THROW(supervariable_blocking(a, opts), BadParameter);
    opts.max_block_size = 33;
    EXPECT_THROW(supervariable_blocking(a, opts), BadParameter);
}

TEST(Blocking, LayoutHelperMatchesSizes) {
    const auto a = sparse::laplacian_2d<double>(6, 4, 2);
    BlockingOptions opts;
    opts.max_block_size = 12;
    const auto layout = supervariable_layout(a, opts);
    EXPECT_EQ(layout->total_rows(), a.num_rows());
    const auto sizes = supervariable_blocking(a, opts);
    ASSERT_EQ(static_cast<std::size_t>(layout->count()), sizes.size());
}

}  // namespace
}  // namespace vbatch::blocking
