// Tests for the 48-matrix synthetic benchmark suite.
#include "base/exception.hpp"
#include <gtest/gtest.h>

#include <set>

#include "sparse/suite.hpp"

namespace vbatch::sparse {
namespace {

TEST(Suite, HasFortyEightUniqueCases) {
    const auto& cases = suite_cases();
    ASSERT_EQ(cases.size(), 48u);
    std::set<int> ids;
    std::set<std::string> names;
    for (const auto& c : cases) {
        ids.insert(c.id);
        names.insert(c.name);
    }
    EXPECT_EQ(ids.size(), 48u);
    EXPECT_EQ(names.size(), 48u);
    EXPECT_EQ(*ids.begin(), 1);
    EXPECT_EQ(*ids.rbegin(), 48);
}

TEST(Suite, CoversAllFamilies) {
    std::set<SuiteFamily> fams;
    for (const auto& c : suite_cases()) {
        fams.insert(c.family);
    }
    EXPECT_EQ(fams.size(), 7u);
}

TEST(Suite, LookupByName) {
    const auto& c = suite_case_by_name("circuit_m");
    EXPECT_EQ(c.family, SuiteFamily::circuit);
    EXPECT_THROW(suite_case_by_name("not_a_case"), BadParameter);
}

TEST(Suite, FamilyNamesAreDistinct) {
    EXPECT_EQ(family_name(SuiteFamily::fem_block), "fem-block");
    EXPECT_EQ(family_name(SuiteFamily::hard), "hard");
    EXPECT_NE(family_name(SuiteFamily::circuit),
              family_name(SuiteFamily::convection));
}

TEST(Suite, SpotBuildOnePerFamily) {
    // Build one representative matrix per family and sanity check it.
    std::set<SuiteFamily> done;
    for (const auto& c : suite_cases()) {
        if (done.count(c.family)) {
            continue;
        }
        done.insert(c.family);
        const auto a = build_suite_matrix(c);
        EXPECT_GT(a.num_rows(), 100) << c.name;
        EXPECT_EQ(a.num_rows(), a.num_cols()) << c.name;
        EXPECT_GT(a.nnz(), a.num_rows()) << c.name;
        // Every diagonal entry must be present (the preconditioners
        // require it).
        for (index_type i = 0; i < a.num_rows(); i += 37) {
            EXPECT_NE(a.at(i, i), 0.0) << c.name << " row " << i;
        }
    }
    EXPECT_EQ(done.size(), 7u);
}

TEST(Suite, HardCasesAreShiftedVersions) {
    const auto& hard = suite_case_by_name("hard_shift_mid");
    const auto a = build_suite_matrix(hard);
    // The shift multiplies diagonals by (1 - x2) < 1: dominance is broken.
    bool dominance_broken = false;
    for (index_type i = 0; i < a.num_rows() && !dominance_broken; ++i) {
        double off = 0, diag = 0;
        for (auto p = a.row_ptrs()[static_cast<std::size_t>(i)];
             p < a.row_ptrs()[static_cast<std::size_t>(i) + 1]; ++p) {
            const auto j = a.col_idxs()[static_cast<std::size_t>(p)];
            const auto v = a.values()[static_cast<std::size_t>(p)];
            if (j == i) {
                diag = std::abs(v);
            } else {
                off += std::abs(v);
            }
        }
        dominance_broken = diag < off;
    }
    EXPECT_TRUE(dominance_broken);
}

TEST(Suite, DeterministicRebuild) {
    const auto& c = suite_case_by_name("fem_d4_s");
    const auto a = build_suite_matrix(c);
    const auto b = build_suite_matrix(c);
    ASSERT_EQ(a.nnz(), b.nnz());
    for (size_type p = 0; p < a.nnz(); p += 101) {
        EXPECT_EQ(a.values()[static_cast<std::size_t>(p)],
                  b.values()[static_cast<std::size_t>(p)]);
    }
}

}  // namespace
}  // namespace vbatch::sparse
