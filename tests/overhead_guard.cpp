// Overhead guard for the dormant-instrumentation contract: with every
// telemetry switch off (VBATCH_TRACE / VBATCH_PERF / VBATCH_POOL_STATS),
// the instrumented hot path must cost within a small tolerance of the
// same loop with the instrumentation objects stripped. The disarmed
// check is one relaxed atomic load + branch per region, so on a real
// workload (a fused CG update sweep per iteration) the difference must
// vanish into measurement noise.
//
// Timing on shared CI hardware is noisy, so the guard is best-of-many
// with retries: it passes as soon as one attempt lands inside the
// tolerance and only fails when every attempt exceeds it -- a persistent
// regression, not a scheduler hiccup.
//
// The companion property -- *armed* telemetry never changes solution
// bits -- is covered by the determinism_telemetry CTest fixture, which
// re-runs determinism_probe with all telemetry armed and compares
// hashes against the disarmed run.
#include <cstdio>
#include <span>
#include <vector>

#include "base/thread_pool.hpp"
#include "base/timer.hpp"
#include "blas/fused.hpp"
#include "obs/perf_counters.hpp"
#include "obs/trace.hpp"

namespace {

constexpr double tolerance = 0.02;  // 2% of the stripped baseline
constexpr int attempts = 10;
constexpr int best_of = 7;
constexpr int sweeps_per_pass = 64;

/// Best-of-`best_of` wall time of `f` (one warm-up pass first).
template <typename F>
double time_best(const F& f) {
    f();
    double best = 1e300;
    for (int r = 0; r < best_of; ++r) {
        vbatch::Timer t;
        f();
        best = std::min(best, t.seconds());
    }
    return best;
}

}  // namespace

int main() {
    using namespace vbatch;

    // Force every switch off regardless of the inherited environment:
    // this binary measures the *disarmed* cost.
    obs::Tracer::set_enabled(false);
    obs::set_perf_enabled(false);
    ThreadPool::set_stats_enabled(false);

    const std::size_t n = 1 << 16;
    std::vector<double> p(n, 0.5), q(n, 0.25), x(n, 0.0), r(n, 1.0);
    volatile double sink = 0.0;

    // Stripped baseline: the raw kernel sweep.
    const auto plain = [&] {
        for (int s = 0; s < sweeps_per_pass; ++s) {
            sink = blas::fused_cg_update(1e-9, std::span<const double>(p),
                                         std::span<const double>(q),
                                         std::span<double>(x),
                                         std::span<double>(r));
        }
    };
    // Instrumented: the same sweep bracketed per iteration exactly like
    // the solver hot paths (trace + perf region per phase).
    const auto instrumented = [&] {
        for (int s = 0; s < sweeps_per_pass; ++s) {
            obs::TraceRegion trace("overhead_guard::blas1");
            obs::PerfRegion perf("overhead_guard::blas1");
            sink = blas::fused_cg_update(1e-9, std::span<const double>(p),
                                         std::span<const double>(q),
                                         std::span<double>(x),
                                         std::span<double>(r));
        }
    };

    double best_overhead = 1e300;
    for (int attempt = 1; attempt <= attempts; ++attempt) {
        const double t_plain = time_best(plain);
        const double t_instr = time_best(instrumented);
        const double overhead = (t_instr - t_plain) / t_plain;
        best_overhead = std::min(best_overhead, overhead);
        std::printf("attempt %2d: stripped %.6fs  instrumented %.6fs  "
                    "overhead %+.2f%%\n",
                    attempt, t_plain, t_instr, overhead * 100.0);
        if (overhead <= tolerance) {
            std::printf("disarmed instrumentation overhead within %.0f%% "
                        "of the stripped baseline\n",
                        tolerance * 100.0);
            return 0;
        }
    }
    std::fprintf(stderr,
                 "FAIL: disarmed instrumentation overhead %.2f%% exceeds "
                 "%.0f%% in all %d attempts\n",
                 best_overhead * 100.0, tolerance * 100.0, attempts);
    return 1;
}
