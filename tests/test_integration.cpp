// End-to-end integration tests: the complete paper pipeline
// (suite matrix -> supervariable blocking -> extraction -> batched
// factorization -> IDR(4) with block-Jacobi preconditioning).
#include "base/exception.hpp"
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/blas1.hpp"
#include "precond/block_jacobi.hpp"
#include "solvers/idr.hpp"
#include "sparse/suite.hpp"

namespace vbatch {
namespace {

solvers::SolveResult run_idr(const sparse::Csr<double>& a,
                             precond::BlockJacobiBackend backend,
                             index_type block_bound,
                             index_type max_iters = 10000) {
    precond::BlockJacobiOptions popts;
    popts.backend = backend;
    popts.max_block_size = block_bound;
    precond::BlockJacobi<double> prec(a, popts);
    std::vector<double> b(static_cast<std::size_t>(a.num_rows()), 1.0);
    std::vector<double> x(b.size(), 0.0);
    solvers::IdrOptions sopts;
    sopts.max_iters = max_iters;
    return solvers::idr(a, std::span<const double>(b), std::span<double>(x),
                        prec, sopts);
}

TEST(Integration, FemBlockProblemFullPipeline) {
    const auto a = sparse::build_suite_matrix(
        sparse::suite_case_by_name("fem_d4_s"));
    const auto result = run_idr(a, precond::BlockJacobiBackend::lu, 32);
    EXPECT_TRUE(result.converged());
    EXPECT_LT(result.relative_residual(), 1e-6);
    EXPECT_GT(result.iterations, 0);
}

TEST(Integration, LuAndGhPreconditionersAreComparable) {
    // The Fig. 8 observation: iteration counts with LU- and GH-based
    // block-Jacobi agree on most problems up to rounding-driven noise.
    const auto a = sparse::build_suite_matrix(
        sparse::suite_case_by_name("fem_d8_s"));
    const auto r_lu = run_idr(a, precond::BlockJacobiBackend::lu, 24);
    const auto r_gh =
        run_idr(a, precond::BlockJacobiBackend::gauss_huard, 24);
    ASSERT_TRUE(r_lu.converged());
    ASSERT_TRUE(r_gh.converged());
    const double ratio = static_cast<double>(r_lu.iterations) /
                         static_cast<double>(r_gh.iterations);
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 2.0);
}

TEST(Integration, GhAndGhtGiveIdenticalIterationCounts) {
    // GH and GH-T factors are bitwise transposes: the preconditioned
    // iteration must be identical, not merely close.
    const auto a = sparse::build_suite_matrix(
        sparse::suite_case_by_name("lap2d_d4"));
    const auto r_gh =
        run_idr(a, precond::BlockJacobiBackend::gauss_huard, 16);
    const auto r_ght =
        run_idr(a, precond::BlockJacobiBackend::gauss_huard_t, 16);
    ASSERT_TRUE(r_gh.converged());
    EXPECT_EQ(r_gh.iterations, r_ght.iterations);
}

TEST(Integration, LargerBlocksTypicallyHelp) {
    // Table I trend: larger block bounds improve convergence on matrices
    // with real block structure.
    const auto a = sparse::build_suite_matrix(
        sparse::suite_case_by_name("fem_d12_s"));
    const auto r8 = run_idr(a, precond::BlockJacobiBackend::lu, 8);
    const auto r32 = run_idr(a, precond::BlockJacobiBackend::lu, 32);
    ASSERT_TRUE(r8.converged());
    ASSERT_TRUE(r32.converged());
    EXPECT_LE(r32.iterations, r8.iterations);
}

TEST(Integration, InversionBackendAlsoWorks) {
    const auto a = sparse::build_suite_matrix(
        sparse::suite_case_by_name("lap3d_d2"));
    const auto result =
        run_idr(a, precond::BlockJacobiBackend::gje_inversion, 16);
    EXPECT_TRUE(result.converged());
}

TEST(Integration, HardCaseStressesTheSolver) {
    // The deliberately indefinite problems either need many iterations or
    // fail -- mirroring the non-converging entries of the paper's Table I.
    const auto a = sparse::build_suite_matrix(
        sparse::suite_case_by_name("hard_shift_high"));
    const auto result = run_idr(a, precond::BlockJacobiBackend::lu, 32,
                                600);
    if (result.converged()) {
        EXPECT_GT(result.iterations, 50);
    } else {
        SUCCEED();
    }
}

TEST(Integration, CircuitMatrixExtractionAndSolve) {
    const auto a = sparse::build_suite_matrix(
        sparse::suite_case_by_name("circuit_s"));
    const auto result = run_idr(a, precond::BlockJacobiBackend::lu, 16);
    EXPECT_TRUE(result.converged());
}

TEST(Integration, SetupTimeIsAccounted) {
    const auto a = sparse::build_suite_matrix(
        sparse::suite_case_by_name("lap2d_d2"));
    precond::BlockJacobiOptions popts;
    popts.max_block_size = 16;
    precond::BlockJacobi<double> prec(a, popts);
    EXPECT_GT(prec.setup_seconds(), 0.0);
    EXPECT_GT(prec.num_blocks(), 1);
}

}  // namespace
}  // namespace vbatch
