// Tests for the per-block breakdown recovery pipeline: degenerate-block
// detection across every factorization backend, the boosting -> scalar
// Jacobi -> identity fallback chain, solver behavior under degradation,
// the preconditioner factory, and the exported metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "base/exception.hpp"
#include "blocking/extraction.hpp"
#include "blocking/supervariable.hpp"
#include "core/simd_dispatch.hpp"
#include "obs/metrics.hpp"
#include "precond/block_jacobi.hpp"
#include "precond/config.hpp"
#include "solvers/bicgstab.hpp"
#include "solvers/gmres.hpp"
#include "sparse/generators.hpp"

namespace vbatch::precond {
namespace {

/// Three 2x2... blocks: a healthy one, an exactly singular one
/// (duplicate rows), and one whose pivot is ~1e-300 relative to the
/// block scale -- the factors exist but are numerically worthless.
sparse::Csr<double> three_block_matrix() {
    return sparse::Csr<double>::from_triplets(
        6, 6,
        {{0, 0, 4.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 3.0},
         {2, 2, 1.0}, {2, 3, 1.0}, {3, 2, 1.0}, {3, 3, 1.0},
         {4, 4, 1e-300}, {5, 5, 1.0}});
}

core::BatchLayoutPtr three_block_layout() {
    return core::make_layout({2, 2, 2});
}

class RecoveryBackends
    : public ::testing::TestWithParam<BlockJacobiBackend> {};

TEST_P(RecoveryBackends, StatusPerBlock) {
    const auto a = three_block_matrix();
    BlockJacobiOptions opts;
    opts.backend = GetParam();
    opts.layout = three_block_layout();
    const BlockJacobi<double> prec(a, opts);

    ASSERT_EQ(prec.block_status().size(), 3u);
    EXPECT_EQ(prec.block_status()[0], core::BlockStatus::ok);
    EXPECT_EQ(prec.block_status()[1], core::BlockStatus::boosted);
    EXPECT_EQ(prec.block_status()[2], core::BlockStatus::boosted);
    const auto summary = prec.recovery_summary();
    EXPECT_EQ(summary.ok, 1);
    EXPECT_EQ(summary.boosted, 2);
    EXPECT_EQ(summary.fell_back, 0);
    EXPECT_EQ(summary.singular, 0);
    EXPECT_EQ(summary.total(), 3u);

    std::vector<double> r(6, 1.0);
    std::vector<double> z(6, 0.0);
    prec.apply(std::span<const double>(r), std::span<double>(z));
    for (const auto v : z) {
        EXPECT_TRUE(std::isfinite(v));
    }
}

TEST_P(RecoveryBackends, StrictPolicyThrows) {
    const auto a = three_block_matrix();
    BlockJacobiOptions opts;
    opts.backend = GetParam();
    opts.layout = three_block_layout();
    opts.recovery = RecoveryPolicy::strict();
    EXPECT_THROW((BlockJacobi<double>(a, opts)), SingularMatrix);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, RecoveryBackends,
    ::testing::Values(BlockJacobiBackend::lu, BlockJacobiBackend::lu_simd,
                      BlockJacobiBackend::gauss_huard,
                      BlockJacobiBackend::gauss_huard_t,
                      BlockJacobiBackend::gje_inversion,
                      BlockJacobiBackend::cholesky),
    [](const auto& info) {
        auto name = backend_name(info.param);
        std::replace(name.begin(), name.end(), '-', '_');
        return name;
    });

TEST(Recovery, BoostedBlockStillPreconditions) {
    // Tridiagonal 6x6 whose middle diagonal block is exactly singular;
    // the full matrix is nonsingular, so the solver must converge with
    // the boosted preconditioner.
    const auto a = sparse::Csr<double>::from_triplets(
        6, 6,
        {{0, 0, 4.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 4.0}, {1, 2, 1.0},
         {2, 1, 1.0}, {2, 2, 1.0}, {2, 3, 1.0},
         {3, 2, 1.0}, {3, 3, 1.0}, {3, 4, 1.0},
         {4, 3, 1.0}, {4, 4, 4.0}, {4, 5, 1.0}, {5, 4, 1.0}, {5, 5, 4.0}});
    BlockJacobiOptions opts;
    opts.layout = three_block_layout();
    const BlockJacobi<double> prec(a, opts);
    EXPECT_EQ(prec.recovery_summary().boosted, 1);

    std::vector<double> b(6, 1.0);
    std::vector<double> x(6, 0.0);
    solvers::GmresOptions so;
    so.rel_tol = 1e-10;
    so.max_iters = 100;
    const auto result = solvers::gmres(a, std::span<const double>(b),
                                       std::span<double>(x), prec, so);
    EXPECT_EQ(result.status, solvers::SolveStatus::converged);
    EXPECT_EQ(result.preconditioner.boosted, 1);

    // Residual check against the exact system.
    std::vector<double> ax(6, 0.0);
    a.spmv(std::span<const double>(x), std::span<double>(ax));
    for (std::size_t i = 0; i < ax.size(); ++i) {
        EXPECT_NEAR(ax[i], 1.0, 1e-8);
    }
}

TEST(Recovery, FallbackChainScalarJacobiThenIdentity) {
    // max_boosts = 0 disables boosting, so the singular middle block
    // falls back to scalar Jacobi from its pristine diagonal (2.0), and
    // the all-zero last block degrades to identity.
    const auto a = sparse::Csr<double>::from_triplets(
        6, 6,
        {{0, 0, 2.0}, {1, 1, 2.0},
         {2, 2, 2.0}, {2, 3, 2.0}, {3, 2, 2.0}, {3, 3, 2.0}});
    BlockJacobiOptions opts;
    opts.layout = three_block_layout();
    opts.recovery.max_boosts = 0;
    const BlockJacobi<double> prec(a, opts);

    EXPECT_EQ(prec.block_status()[0], core::BlockStatus::ok);
    EXPECT_EQ(prec.block_status()[1], core::BlockStatus::fell_back);
    EXPECT_EQ(prec.block_status()[2], core::BlockStatus::singular);
    const auto summary = prec.recovery_summary();
    EXPECT_EQ(summary.fell_back, 1);
    EXPECT_EQ(summary.singular, 1);
    EXPECT_EQ(summary.degraded(), 2u);

    std::vector<double> r = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
    std::vector<double> z(6, 0.0);
    prec.apply(std::span<const double>(r), std::span<double>(z));
    // Healthy block: exact inverse. Fallback block: r / diag. Singular
    // block: identity.
    EXPECT_DOUBLE_EQ(z[0], 0.5);
    EXPECT_DOUBLE_EQ(z[1], 1.0);
    EXPECT_DOUBLE_EQ(z[2], 1.5);
    EXPECT_DOUBLE_EQ(z[3], 2.0);
    EXPECT_DOUBLE_EQ(z[4], 5.0);
    EXPECT_DOUBLE_EQ(z[5], 6.0);
}

TEST(Recovery, AllZeroBlockSkipsBoostingEvenWhenAllowed) {
    // Boosting an all-zero block would just factorize tau*I; the
    // pipeline goes straight to the identity instead.
    const auto a = sparse::Csr<double>::from_triplets(
        4, 4, {{0, 0, 3.0}, {1, 1, 3.0}});
    BlockJacobiOptions opts;
    opts.layout = core::make_layout({2, 2});
    const BlockJacobi<double> prec(a, opts);
    EXPECT_EQ(prec.block_status()[1], core::BlockStatus::singular);
    EXPECT_EQ(prec.recovery_summary().singular, 1);
}

TEST(Recovery, BoostOnlyPolicyThrowsWhenBoostsExhausted) {
    // An all-zero block cannot be boosted; Mode::boost must throw
    // instead of silently degrading further.
    const auto a = sparse::Csr<double>::from_triplets(
        4, 4, {{0, 0, 3.0}, {1, 1, 3.0}});
    BlockJacobiOptions opts;
    opts.layout = core::make_layout({2, 2});
    opts.recovery = RecoveryPolicy::boost_only();
    EXPECT_THROW((BlockJacobi<double>(a, opts)), SingularMatrix);
}

/// Block-diagonal matrix of `nb` dense mxm blocks with deterministic
/// entries; blocks where `b % 5 == 3` get duplicate first rows (exactly
/// singular, same pattern).
sparse::Csr<double> block_diagonal_matrix(size_type nb, index_type m) {
    std::vector<sparse::Triplet<double>> trips;
    for (size_type b = 0; b < nb; ++b) {
        const auto r0 = static_cast<index_type>(b) * m;
        const bool singular = b % 5 == 3;
        for (index_type i = 0; i < m; ++i) {
            for (index_type j = 0; j < m; ++j) {
                const index_type src = (singular && i == 1) ? 0 : i;
                double v = static_cast<double>(
                               (src * 7 + j * 13 + static_cast<int>(b) * 3) %
                               11) -
                           5.0;
                if (src == j) {
                    v += 12.0;
                }
                trips.push_back({r0 + i, r0 + j, v});
            }
        }
    }
    return sparse::Csr<double>::from_triplets(
        static_cast<index_type>(nb) * m, static_cast<index_type>(nb) * m,
        trips);
}

TEST(Recovery, BitwiseScalarVsSimdWithBoostedBlocks) {
    // The scalar LU and the interleaved SIMD LU must stay bitwise
    // identical when some blocks go through the boosting path: boosted
    // blocks are refactorized by the same scalar kernel and repacked
    // into their SIMD group.
    const size_type nb = 20;
    const index_type m = 8;
    const auto a = block_diagonal_matrix(nb, m);
    const auto layout = core::make_uniform_layout(nb, m);

    BlockJacobiOptions scalar_opts;
    scalar_opts.backend = BlockJacobiBackend::lu;
    scalar_opts.layout = layout;
    const BlockJacobi<double> scalar(a, scalar_opts);

    BlockJacobiOptions simd_opts;
    simd_opts.backend = BlockJacobiBackend::lu_simd;
    simd_opts.layout = layout;
    const BlockJacobi<double> simd(a, simd_opts);

    EXPECT_EQ(scalar.recovery_summary().boosted, 4);
    EXPECT_EQ(simd.recovery_summary().boosted, 4);
    for (size_type b = 0; b < nb; ++b) {
        EXPECT_EQ(scalar.block_status()[b], simd.block_status()[b]) << b;
    }

    std::vector<double> r(static_cast<std::size_t>(nb) * m);
    for (std::size_t k = 0; k < r.size(); ++k) {
        r[k] = 1.0 + 0.25 * static_cast<double>(k % 5);
    }
    std::vector<double> z1(r.size(), 0.0);
    std::vector<double> z2(r.size(), 0.0);
    scalar.apply(std::span<const double>(r), std::span<double>(z1));
    simd.apply(std::span<const double>(r), std::span<double>(z2));
    for (std::size_t k = 0; k < r.size(); ++k) {
        EXPECT_EQ(z1[k], z2[k]) << "element " << k;
    }
}

TEST(Recovery, PreconditionerDegradedSolveStatus) {
    // A degraded preconditioner plus an unreachable tolerance: the
    // result must say preconditioner_degraded, not plain max_iters.
    const auto a = sparse::Csr<double>::from_triplets(
        6, 6,
        {{0, 0, 4.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 4.0}, {1, 2, 1.0},
         {2, 1, 1.0}, {2, 2, 1.0}, {2, 3, 1.0},
         {3, 2, 1.0}, {3, 3, 1.0}, {3, 4, 1.0},
         {4, 3, 1.0}, {4, 4, 4.0}, {4, 5, 1.0}, {5, 4, 1.0}, {5, 5, 4.0}});
    BlockJacobiOptions opts;
    opts.layout = three_block_layout();
    const BlockJacobi<double> prec(a, opts);
    ASSERT_GT(prec.recovery_summary().degraded(), 0u);

    std::vector<double> b(6, 1.0);
    std::vector<double> x(6, 0.0);
    solvers::SolverOptions so;
    so.rel_tol = 1e-30;
    so.max_iters = 1;
    const auto result = solvers::bicgstab(a, std::span<const double>(b),
                                          std::span<double>(x), prec, so);
    EXPECT_FALSE(result.converged());
    EXPECT_EQ(result.status, solvers::SolveStatus::preconditioner_degraded);
}

TEST(Recovery, SolveStatusToString) {
    using solvers::SolveStatus;
    EXPECT_STREQ(to_string(SolveStatus::converged), "converged");
    EXPECT_STREQ(to_string(SolveStatus::max_iters), "max_iters");
    EXPECT_STREQ(to_string(SolveStatus::breakdown), "breakdown");
    EXPECT_STREQ(to_string(SolveStatus::preconditioner_degraded),
                 "preconditioner_degraded");
    EXPECT_STREQ(core::to_string(core::BlockStatus::boosted), "boosted");
}

TEST(Recovery, MetricsExported) {
    auto& registry = obs::Registry::global();
    const auto before_ok = registry.counter_value("block_jacobi.blocks_ok");
    const auto before_boosted =
        registry.counter_value("block_jacobi.blocks_boosted");
    const auto a = three_block_matrix();
    BlockJacobiOptions opts;
    opts.layout = three_block_layout();
    const BlockJacobi<double> prec(a, opts);
    EXPECT_DOUBLE_EQ(registry.counter_value("block_jacobi.blocks_ok"),
                     before_ok + 1.0);
    EXPECT_DOUBLE_EQ(registry.counter_value("block_jacobi.blocks_boosted"),
                     before_boosted + 2.0);
}

TEST(Recovery, MakeBlocksSingularZeroesValuesKeepsPattern) {
    auto a = sparse::laplacian_2d<double>(8, 8, 2, 1);
    const auto layout = blocking::supervariable_layout(
        a, blocking::BlockingOptions{.max_block_size = 8});
    const std::vector<index_type> cols_before(a.col_idxs().begin(),
                                              a.col_idxs().end());
    const auto made = blocking::make_blocks_singular(a, *layout, 3);
    EXPECT_EQ(made, 3u);
    const std::vector<index_type> cols_after(a.col_idxs().begin(),
                                             a.col_idxs().end());
    EXPECT_EQ(cols_before, cols_after);

    BlockJacobiOptions opts;
    opts.layout = layout;
    const BlockJacobi<double> prec(a, opts);
    // The zeroed blocks carry no information at all -> identity.
    EXPECT_EQ(prec.recovery_summary().singular, 3);
    EXPECT_EQ(prec.recovery_summary().ok,
              static_cast<size_type>(layout->count()) - 3);
}

// --- factory -------------------------------------------------------

TEST(Factory, BuildsEveryBuiltinBackend) {
    const auto a = sparse::laplacian_2d<double>(6, 6, 2, 1);
    for (const auto* backend :
         {"none", "jacobi", "lu", "lu-simd", "gh", "gh-t", "gje",
          "gje-inv", "cholesky"}) {
        Config config;
        config.backend = backend;
        config.max_block_size = 8;
        const auto prec = make_preconditioner<double>(a, config);
        ASSERT_NE(prec, nullptr) << backend;
        std::vector<double> r(static_cast<std::size_t>(a.num_rows()), 1.0);
        std::vector<double> z(r.size(), 0.0);
        prec->apply(std::span<const double>(r), std::span<double>(z));
        EXPECT_TRUE(std::isfinite(z[0])) << backend;
    }
}

TEST(Factory, UnknownBackendThrowsWithRegisteredList) {
    const auto a = sparse::laplacian_2d<double>(4, 4, 1, 1);
    try {
        make_preconditioner<double>(a, {.backend = "ilu"});
        FAIL() << "expected BadParameter";
    } catch (const BadParameter& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("ilu"), std::string::npos);
        EXPECT_NE(what.find("lu-simd"), std::string::npos);
    }
}

TEST(Factory, RegisteredBackendsAndQueries) {
    const auto names = registered_backends();
    for (const auto* required : {"none", "jacobi", "lu", "cholesky"}) {
        EXPECT_TRUE(backend_registered(required)) << required;
        EXPECT_NE(std::find(names.begin(), names.end(), required),
                  names.end());
    }
    EXPECT_FALSE(backend_registered("ilu"));
}

TEST(Factory, CustomBackendRegistration) {
    register_backend<double>(
        "test-identity",
        [](const sparse::Csr<double>&, const Config&) {
            return PreconditionerPtr<double>(
                std::make_unique<IdentityPreconditioner<double>>());
        });
    EXPECT_TRUE(backend_registered("test-identity"));
    const auto a = sparse::laplacian_2d<double>(4, 4, 1, 1);
    const auto prec =
        make_preconditioner<double>(a, {.backend = "test-identity"});
    EXPECT_EQ(prec->name(), "identity");
    // Only the double factory was registered; float must still throw.
    const auto af = sparse::laplacian_2d<float>(4, 4, 1, 1);
    EXPECT_THROW(
        make_preconditioner<float>(af, {.backend = "test-identity"}),
        BadParameter);
}

TEST(Factory, StrictConfigPropagatesToBlockJacobi) {
    auto a = three_block_matrix();
    Config config;
    config.backend = "lu";
    config.layout = three_block_layout();
    config.recovery = RecoveryPolicy::strict();
    EXPECT_THROW(make_preconditioner<double>(a, config), SingularMatrix);
    config.recovery = {};
    const auto prec = make_preconditioner<double>(a, config);
    EXPECT_EQ(prec->recovery_summary().boosted, 2);
}

}  // namespace
}  // namespace vbatch::precond
