// Tests for the lanes-parametric SIMD facade (src/simd).
//
// Two layers:
//   * operation sweep -- every facade op (arithmetic, fma, compares,
//     mask algebra, select/keep, gathers) is run at every available
//     backend's width through the per-ISA kernel TUs
//     (core::run_simd_op_sweep) and compared lane-by-lane against plain
//     scalar oracles computed here;
//   * kernel sweep -- getrf + getrs over the Fig. 4 size range (1..32)
//     must produce bitwise-identical factors, pivots, solutions, and
//     breakdown reports on every available dispatch level, including the
//     frozen state of singular lanes (the recovery contract).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/getrf.hpp"
#include "core/simd_dispatch.hpp"
#include "core/vectorized.hpp"
#include "simd/op_sweep.hpp"

namespace vbatch::core {
namespace {

template <typename T>
std::uint64_t bit_pattern(T x) {
    if constexpr (sizeof(T) == 4) {
        std::uint32_t u;
        std::memcpy(&u, &x, sizeof(u));
        return u;
    } else {
        std::uint64_t u;
        std::memcpy(&u, &x, sizeof(u));
        return u;
    }
}

#define EXPECT_BITEQ(a, b)                                                   \
    EXPECT_EQ(bit_pattern(a), bit_pattern(b)) << "values " << (a) << " vs " \
                                              << (b)

// ---------------------------------------------------------------------
// Operation sweep vs scalar oracles
// ---------------------------------------------------------------------

/// Deterministic input covering signs, zeros, equal lanes and a NaN-free
/// magnitude spread (comparisons are ordered; NaN behaviour is pinned by
/// the kernel sweep's adversarial batches instead).
template <typename T>
simd::OpSweepInput<T> make_sweep_input() {
    simd::OpSweepInput<T> in{};
    constexpr index_type n = simd::op_sweep_max_width;
    for (index_type l = 0; l < n; ++l) {
        in.a[l] = static_cast<T>((l % 5) - 2) * static_cast<T>(1.25) +
                  static_cast<T>(l) * static_cast<T>(0.03125);
        in.b[l] = static_cast<T>((l % 3) - 1) * static_cast<T>(0.75);
        if (l % 4 == 3) {
            in.b[l] = in.a[l];  // exercise cmp_eq hits
        }
        in.c[l] = static_cast<T>(0.5) - static_cast<T>(l % 7);
        in.rows[l] = static_cast<T>((l * 5 + 3) % n);
        in.rows_i[l] = static_cast<index_type>((l * 3 + 1) % n);
    }
    for (index_type r = 0; r < n; ++r) {
        for (index_type l = 0; l < n; ++l) {
            in.col[r * n + l] = static_cast<T>(r * 100 + l) +
                                static_cast<T>(0.125);
        }
    }
    return in;
}

template <typename T>
void check_op_sweep(SimdIsa isa) {
    const auto in = make_sweep_input<T>();
    simd::OpSweepResult<T> out{};
    run_simd_op_sweep<T>(isa, in, out);

    ASSERT_EQ(out.width, simd_lanes<T>(isa)) << simd_isa_name(isa);
    const index_type w = out.width;

    unsigned gt = 0, lt = 0, eq = 0, and_m = 0, or_m = 0, andnot_m = 0;
    bool any_gt = false;
    for (index_type l = 0; l < w; ++l) {
        const T a = in.a[l], b = in.b[l], c = in.c[l];
        EXPECT_BITEQ(out.add[l], a + b);
        EXPECT_BITEQ(out.sub[l], a - b);
        EXPECT_BITEQ(out.mul[l], a * b);
        EXPECT_BITEQ(out.div[l], a / b);
        EXPECT_BITEQ(out.abs_v[l], std::fabs(a));
        EXPECT_BITEQ(out.fma_v[l], std::fma(a, b, c));
        EXPECT_BITEQ(out.broadcast[l], in.a[0]);

        EXPECT_BITEQ(out.select_gt[l], a > b ? a : b);
        EXPECT_BITEQ(out.keep_lt[l], a < b ? a : T{0});
        EXPECT_BITEQ(out.select_ge[l], (a == b) || (a > b) ? c : a);

        EXPECT_BITEQ(
            out.gather[l],
            in.col[static_cast<index_type>(in.rows[l]) *
                       simd::op_sweep_max_width +
                   l]);
        EXPECT_BITEQ(out.gather_i[l],
                     in.col[in.rows_i[l] * simd::op_sweep_max_width + l]);

        gt |= (a > b ? 1u : 0u) << l;
        lt |= (a < b ? 1u : 0u) << l;
        eq |= (a == b ? 1u : 0u) << l;
        and_m |= ((a > b) && (a < c) ? 1u : 0u) << l;
        or_m |= ((a > b) || (a < c) ? 1u : 0u) << l;
        andnot_m |= ((a > b) && !(a < c) ? 1u : 0u) << l;
        any_gt = any_gt || a > b;
    }
    EXPECT_EQ(out.gt_bits, gt) << simd_isa_name(isa);
    EXPECT_EQ(out.lt_bits, lt);
    EXPECT_EQ(out.eq_bits, eq);
    EXPECT_EQ(out.and_bits, and_m);
    EXPECT_EQ(out.or_bits, or_m);
    EXPECT_EQ(out.andnot_bits, andnot_m);
    EXPECT_EQ(out.all_bits, (w == 32 ? ~0u : (1u << w) - 1u));
    EXPECT_EQ(out.any_gt, any_gt);
    EXPECT_FALSE(out.any_none);
    EXPECT_TRUE(out.only_lane_ok) << simd_isa_name(isa);
}

class SimdIsas : public ::testing::TestWithParam<SimdIsa> {};

INSTANTIATE_TEST_SUITE_P(
    AvailableIsas, SimdIsas, ::testing::ValuesIn(available_simd_isas()),
    [](const ::testing::TestParamInfo<SimdIsa>& info) {
        return simd_isa_name(info.param);
    });

TEST_P(SimdIsas, OpSweepMatchesScalarOraclesDouble) {
    check_op_sweep<double>(GetParam());
}

TEST_P(SimdIsas, OpSweepMatchesScalarOraclesFloat) {
    check_op_sweep<float>(GetParam());
}

// ---------------------------------------------------------------------
// Bitwise scalar == backend kernel sweep
// ---------------------------------------------------------------------

template <typename T>
void expect_bitwise_equal_batches(const BatchedMatrices<T>& a,
                                  const BatchedMatrices<T>& b,
                                  const char* label) {
    ASSERT_EQ(a.count(), b.count());
    for (size_type i = 0; i < a.count(); ++i) {
        const auto va = a.view(i);
        const auto vb = b.view(i);
        for (index_type c = 0; c < va.cols(); ++c) {
            for (index_type r = 0; r < va.rows(); ++r) {
                EXPECT_EQ(bit_pattern(va(r, c)), bit_pattern(vb(r, c)))
                    << label << ": block " << i << " (" << r << "," << c
                    << "): " << va(r, c) << " vs " << vb(r, c);
            }
        }
    }
}

/// getrf + getrs at `isa` vs the scalar dispatch level: factors, pivots,
/// statuses and solutions must agree bit for bit.
template <typename T>
void check_kernel_sweep(SimdIsa isa, index_type m, std::uint64_t seed) {
    // Count beyond two full chunks of the widest lane width so padding
    // lanes and the ragged tail chunk are always exercised.
    const size_type count = 2 * simd_lanes<T>(isa) + 3;
    const auto layout = make_uniform_layout(count, m);
    auto mats = BatchedMatrices<T>::random_general(layout, seed);
    // One singular block mid-batch: the breakdown step, frozen factors
    // and completed permutation must match the scalar level exactly.
    if (m >= 2 && count > 4) {
        auto v = mats.view(4);
        for (index_type i = 0; i < m; ++i) {
            v(i, 1) = T{0};
        }
    }

    auto ref = mats.clone();
    VectorizedOptions scalar_opts;
    scalar_opts.isa = SimdIsa::scalar;
    scalar_opts.on_singular = SingularPolicy::report;
    scalar_opts.parallel = false;
    scalar_opts.monitor = true;
    BatchedPivots ref_perm(layout);
    const auto ref_status = getrf_batch_vectorized(ref, ref_perm,
                                                   scalar_opts);

    VectorizedOptions opts = scalar_opts;
    opts.isa = isa;
    BatchedPivots perm(layout);
    const auto status = getrf_batch_vectorized(mats, perm, opts);

    expect_bitwise_equal_batches(ref, mats, "factors");
    for (size_type i = 0; i < count; ++i) {
        const auto pa = ref_perm.span(i);
        const auto pb = perm.span(i);
        for (std::size_t k = 0; k < pa.size(); ++k) {
            EXPECT_EQ(pa[k], pb[k]) << "block " << i << " pivot " << k;
        }
    }
    EXPECT_EQ(ref_status.failures, status.failures);
    EXPECT_EQ(ref_status.first_failure, status.first_failure);
    EXPECT_EQ(ref_status.first_failure_step, status.first_failure_step);
    ASSERT_EQ(ref_status.block_status.size(), status.block_status.size());
    for (std::size_t i = 0; i < status.block_status.size(); ++i) {
        EXPECT_EQ(ref_status.block_status[i], status.block_status[i])
            << "block " << i;
        EXPECT_EQ(ref_status.block_info[i].step, status.block_info[i].step);
        EXPECT_EQ(bit_pattern(ref_status.block_info[i].min_pivot),
                  bit_pattern(status.block_info[i].min_pivot));
    }

    auto rhs_ref = BatchedVectors<T>::random(layout, seed + 1);
    auto rhs = rhs_ref.clone();
    getrs_batch_vectorized(ref, ref_perm, rhs_ref, scalar_opts);
    getrs_batch_vectorized(mats, perm, rhs, opts);
    for (size_type i = 0; i < count; ++i) {
        const auto ra = rhs_ref.span(i);
        const auto rb = rhs.span(i);
        for (std::size_t k = 0; k < ra.size(); ++k) {
            EXPECT_EQ(bit_pattern(ra[k]), bit_pattern(rb[k]))
                << "m=" << m << " block " << i << " row " << k;
        }
    }
}

TEST_P(SimdIsas, GetrfGetrsBitwiseEqualsScalarOverFig4SizesDouble) {
    for (index_type m = 1; m <= max_block_size; ++m) {
        check_kernel_sweep<double>(GetParam(), m,
                                   1000 + static_cast<std::uint64_t>(m));
    }
}

TEST_P(SimdIsas, GetrfGetrsBitwiseEqualsScalarOverFig4SizesFloat) {
    for (index_type m = 1; m <= max_block_size; ++m) {
        check_kernel_sweep<float>(GetParam(), m,
                                  2000 + static_cast<std::uint64_t>(m));
    }
}

TEST(SimdDispatch, ParseRoundTripsEveryIsaName) {
    for (const SimdIsa isa :
         {SimdIsa::scalar, SimdIsa::sse2, SimdIsa::avx2, SimdIsa::avx512,
          SimdIsa::neon}) {
        SimdIsa parsed;
        ASSERT_TRUE(parse_simd_isa(simd_isa_name(isa), parsed));
        EXPECT_EQ(parsed, isa);
    }
    SimdIsa parsed;
    EXPECT_FALSE(parse_simd_isa("auto", parsed));
    EXPECT_FALSE(parse_simd_isa("avx1024", parsed));
    EXPECT_FALSE(parse_simd_isa(nullptr, parsed));
}

}  // namespace
}  // namespace vbatch::core
