// Unit tests for the dense BLAS/LAPACK substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/blas1.hpp"
#include "blas/blas2.hpp"
#include "blas/blas3.hpp"
#include "blas/dense_matrix.hpp"
#include "blas/lapack.hpp"

namespace vbatch {
namespace {

TEST(Blas1, AxpyDotNrm2) {
    std::vector<double> x{1, 2, 3};
    std::vector<double> y{4, 5, 6};
    blas::axpy(2.0, std::span<const double>(x), std::span<double>(y));
    EXPECT_EQ(y[0], 6.0);
    EXPECT_EQ(y[2], 12.0);
    EXPECT_DOUBLE_EQ(blas::dot(std::span<const double>(x),
                               std::span<const double>(x)),
                     14.0);
    EXPECT_DOUBLE_EQ(blas::nrm2(std::span<const double>(x)),
                     std::sqrt(14.0));
    EXPECT_DOUBLE_EQ(blas::asum(std::span<const double>(x)), 6.0);
}

TEST(Blas1, ScalCopyFillXpby) {
    std::vector<double> x{1, -2, 3};
    blas::scal(-2.0, std::span<double>(x));
    EXPECT_EQ(x[1], 4.0);
    std::vector<double> y(3);
    blas::copy(std::span<const double>(x), std::span<double>(y));
    EXPECT_EQ(y[2], -6.0);
    blas::xpby(std::span<const double>(x), 0.5, std::span<double>(y));
    EXPECT_EQ(y[2], -9.0);
    blas::fill(std::span<double>(y), 0.0);
    EXPECT_EQ(y[0], 0.0);
}

TEST(Blas1, IamaxPicksFirstLargest) {
    std::vector<double> x{1.0, -5.0, 5.0, 2.0};
    EXPECT_EQ(blas::iamax(std::span<const double>(x)), 1);
    EXPECT_EQ(blas::iamax(std::span<const double>{}), -1);
}

TEST(Blas1, DimensionMismatchThrows) {
    std::vector<double> x{1, 2};
    std::vector<double> y{1, 2, 3};
    EXPECT_THROW(
        blas::axpy(1.0, std::span<const double>(x), std::span<double>(y)),
        DimensionMismatch);
}

TEST(Blas2, GemvMatchesManual) {
    DenseMatrix<double> a{{1, 2}, {3, 4}, {5, 6}};
    std::vector<double> x{1, -1};
    std::vector<double> y{10, 10, 10};
    blas::gemv(2.0, a.view(), std::span<const double>(x), 0.5,
               std::span<double>(y));
    EXPECT_DOUBLE_EQ(y[0], 2.0 * (1 - 2) + 5.0);
    EXPECT_DOUBLE_EQ(y[1], 2.0 * (3 - 4) + 5.0);
    EXPECT_DOUBLE_EQ(y[2], 2.0 * (5 - 6) + 5.0);
}

TEST(Blas2, GemvTransposed) {
    DenseMatrix<double> a{{1, 2}, {3, 4}};
    std::vector<double> x{1, 1};
    std::vector<double> y{0, 0};
    blas::gemv_t(1.0, a.view(), std::span<const double>(x), 0.0,
                 std::span<double>(y));
    EXPECT_DOUBLE_EQ(y[0], 4.0);
    EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(Blas2, GerRankOneUpdate) {
    auto a = DenseMatrix<double>::zeros(2, 3);
    std::vector<double> x{1, 2};
    std::vector<double> y{3, 4, 5};
    blas::ger(1.0, std::span<const double>(x), std::span<const double>(y),
              a.view());
    EXPECT_DOUBLE_EQ(a(1, 2), 10.0);
    EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
}

TEST(Blas2, TrsvLowerUpper) {
    DenseMatrix<double> l{{1, 0}, {2, 1}};
    std::vector<double> b{3, 8};
    blas::trsv(blas::Uplo::lower, blas::Diag::unit, l.view(),
               std::span<double>(b));
    EXPECT_DOUBLE_EQ(b[0], 3.0);
    EXPECT_DOUBLE_EQ(b[1], 2.0);
    DenseMatrix<double> u{{2, 1}, {0, 4}};
    std::vector<double> c{5, 8};
    blas::trsv(blas::Uplo::upper, blas::Diag::non_unit, u.view(),
               std::span<double>(c));
    EXPECT_DOUBLE_EQ(c[1], 2.0);
    EXPECT_DOUBLE_EQ(c[0], 1.5);
}

TEST(Blas3, GemmSmall) {
    DenseMatrix<double> a{{1, 2}, {3, 4}};
    DenseMatrix<double> b{{5, 6}, {7, 8}};
    auto c = DenseMatrix<double>::zeros(2, 2);
    blas::gemm(1.0, a.view(), b.view(), 0.0, c.view());
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
    auto d = DenseMatrix<double>::zeros(2, 2);
    blas::gemm_tn(1.0, a.view(), b.view(), 0.0, d.view());
    EXPECT_DOUBLE_EQ(d(0, 0), 1 * 5 + 3 * 7);
}

TEST(DenseMatrix, FactoriesAndClone) {
    auto i3 = DenseMatrix<double>::identity(3);
    EXPECT_EQ(i3(1, 1), 1.0);
    EXPECT_EQ(i3(0, 1), 0.0);
    auto r = DenseMatrix<double>::random(4, 4, 11);
    auto r2 = DenseMatrix<double>::random(4, 4, 11);
    EXPECT_EQ(r(2, 3), r2(2, 3));
    auto c = r.clone();
    c(0, 0) += 1.0;
    EXPECT_NE(c(0, 0), r(0, 0));
}

TEST(DenseMatrix, DiagonallyDominantIsDominant) {
    auto a = DenseMatrix<double>::random_diagonally_dominant(8, 3);
    for (index_type i = 0; i < 8; ++i) {
        double off = 0;
        for (index_type j = 0; j < 8; ++j) {
            if (i != j) {
                off += std::abs(a(i, j));
            }
        }
        EXPECT_GT(std::abs(a(i, i)), off);
    }
}

class LapackSizes : public ::testing::TestWithParam<index_type> {};

TEST_P(LapackSizes, GetrfResidualSmall) {
    const index_type n = GetParam();
    auto a = DenseMatrix<double>::random(n, n, 100 + n);
    auto lu = a.clone();
    std::vector<index_type> ipiv(static_cast<std::size_t>(n));
    ASSERT_EQ(lapack::getrf<double>(lu.view(), ipiv), 0);
    const double res = lapack::factorization_residual<double>(
        a.view(), lu.view(), ipiv);
    EXPECT_LT(res, 1e-13 * n);
}

TEST_P(LapackSizes, GesvSolves) {
    const index_type n = GetParam();
    auto a = DenseMatrix<double>::random_diagonally_dominant(n, 200 + n);
    std::vector<double> x_ref(static_cast<std::size_t>(n));
    for (index_type i = 0; i < n; ++i) {
        x_ref[static_cast<std::size_t>(i)] = std::sin(i + 1.0);
    }
    std::vector<double> b(static_cast<std::size_t>(n), 0.0);
    blas::gemv(1.0, a.view(), std::span<const double>(x_ref), 0.0,
               std::span<double>(b));
    ASSERT_EQ(lapack::gesv<double>(a.view(), std::span<double>(b)), 0);
    for (index_type i = 0; i < n; ++i) {
        EXPECT_NEAR(b[static_cast<std::size_t>(i)],
                    x_ref[static_cast<std::size_t>(i)], 1e-10);
    }
}

TEST_P(LapackSizes, InvertProducesInverse) {
    const index_type n = GetParam();
    auto a = DenseMatrix<double>::random_diagonally_dominant(n, 300 + n);
    DenseMatrix<double> inv(n, n);
    ASSERT_EQ(lapack::invert<double>(a.view(), inv.view()), 0);
    auto prod = DenseMatrix<double>::zeros(n, n);
    blas::gemm(1.0, a.view(), inv.view(), 0.0, prod.view());
    for (index_type i = 0; i < n; ++i) {
        for (index_type j = 0; j < n; ++j) {
            EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-10);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LapackSizes,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 16, 21, 27,
                                           32));

TEST(Lapack, GetrfReportsSingularity) {
    auto a = DenseMatrix<double>::zeros(3, 3);
    a(0, 0) = 1.0;  // rank 1
    std::vector<index_type> ipiv(3);
    EXPECT_GT(lapack::getrf<double>(a.view(), ipiv), 0);
}

TEST(Lapack, PivotingHandlesZeroDiagonal) {
    // Without pivoting this matrix breaks down immediately.
    DenseMatrix<double> a{{0, 1}, {1, 0}};
    std::vector<double> b{2, 3};
    ASSERT_EQ(lapack::gesv<double>(a.view(), std::span<double>(b)), 0);
    EXPECT_DOUBLE_EQ(b[0], 3.0);
    EXPECT_DOUBLE_EQ(b[1], 2.0);
}

TEST(Lapack, ConditionNumberIdentity) {
    auto i4 = DenseMatrix<double>::identity(4);
    EXPECT_NEAR(lapack::condition_number_1<double>(i4.view()), 1.0, 1e-12);
    auto a = DenseMatrix<double>::zeros(2, 2);
    EXPECT_TRUE(std::isinf(lapack::condition_number_1<double>(a.view())));
}

TEST(Lapack, NormInf) {
    DenseMatrix<double> a{{1, -2}, {3, 4}};
    EXPECT_DOUBLE_EQ(lapack::norm_inf<double>(a.view()), 7.0);
}

}  // namespace
}  // namespace vbatch
