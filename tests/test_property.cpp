// Property-based cross-kernel tests: randomized variable-size batches
// exercised through every solver path, asserting the invariants that must
// hold regardless of data:
//   * all four factorization routes solve the same systems to the same
//     answer (within condition-scaled rounding),
//   * permutations are valid,
//   * implicit == explicit pivoting bit-for-bit,
//   * CPU == SIMT backends bit-for-bit,
//   * the blocking always partitions the matrix.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "base/random.hpp"
#include "blas/blas2.hpp"
#include "blas/lapack.hpp"
#include "blocking/supervariable.hpp"
#include "core/gauss_huard.hpp"
#include "core/gauss_jordan.hpp"
#include "core/getrf.hpp"
#include "core/simt_kernels.hpp"
#include "core/trsv.hpp"
#include "sparse/generators.hpp"

namespace vbatch {
namespace {

using core::BatchedMatrices;
using core::BatchedPivots;
using core::BatchedVectors;

/// Random variable-size layout drawn from the given seed.
core::BatchLayoutPtr random_layout(std::uint64_t seed, size_type count) {
    auto eng = make_engine(seed);
    std::vector<index_type> sizes;
    sizes.reserve(static_cast<std::size_t>(count));
    for (size_type i = 0; i < count; ++i) {
        sizes.push_back(uniform_int(eng, 1, 32));
    }
    return core::make_layout(std::move(sizes));
}

class RandomBatches : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomBatches, AllFactorizationRoutesAgree) {
    const auto seed = GetParam();
    const auto layout = random_layout(seed, 24);
    const auto a = BatchedMatrices<double>::random_general(layout, seed);
    const auto b0 = BatchedVectors<double>::random(layout, seed + 1);

    // Route 1: small-size LU.
    auto a_lu = a.clone();
    BatchedPivots p_lu(layout);
    ASSERT_TRUE(core::getrf_batch(a_lu, p_lu).ok());
    auto x_lu = b0.clone();
    core::getrs_batch(a_lu, p_lu, x_lu);

    // Route 2: Gauss-Huard.
    auto a_gh = a.clone();
    BatchedPivots p_gh(layout);
    ASSERT_TRUE(core::gauss_huard_batch(a_gh, p_gh).ok());
    auto x_gh = b0.clone();
    core::gauss_huard_solve_batch(a_gh, p_gh, x_gh);

    // Route 3: Gauss-Jordan inversion + GEMV.
    auto a_gj = a.clone();
    ASSERT_TRUE(core::gauss_jordan_batch(a_gj).ok());
    auto x_gj = b0.clone();
    core::apply_inverse_batch(a_gj, x_gj);

    // Route 4: dense reference.
    for (size_type i = 0; i < layout->count(); ++i) {
        const index_type m = layout->size(i);
        if (m == 0) {
            continue;
        }
        std::vector<double> x_ref(b0.span(i).begin(), b0.span(i).end());
        ASSERT_EQ(lapack::gesv<double>(a.view(i), std::span<double>(x_ref)),
                  0);
        // Scale tolerance with the conditioning of the block.
        const double cond = lapack::condition_number_1<double>(a.view(i));
        const double tol = 1e-13 * std::max(1.0, cond);
        for (index_type k = 0; k < m; ++k) {
            const auto kk = static_cast<std::size_t>(k);
            EXPECT_NEAR(x_lu.span(i)[kk], x_ref[kk], tol)
                << "LU, entry " << i << " row " << k << " cond " << cond;
            EXPECT_NEAR(x_gh.span(i)[kk], x_ref[kk], tol)
                << "GH, entry " << i << " row " << k;
            EXPECT_NEAR(x_gj.span(i)[kk], x_ref[kk], tol)
                << "GJE, entry " << i << " row " << k;
        }
    }
}

TEST_P(RandomBatches, PermutationsAreValidAndBackendsIdentical) {
    const auto seed = GetParam();
    const auto layout = random_layout(seed + 100, 16);
    auto a_cpu = BatchedMatrices<double>::random_general(layout, seed);
    auto a_simt = a_cpu.clone();
    BatchedPivots p_cpu(layout), p_simt(layout);
    core::getrf_batch(a_cpu, p_cpu);
    EXPECT_TRUE(core::getrf_batch_simt(a_simt, p_simt).status.ok());
    for (size_type i = 0; i < layout->count(); ++i) {
        const index_type m = layout->size(i);
        std::vector<bool> seen(static_cast<std::size_t>(m), false);
        for (index_type k = 0; k < m; ++k) {
            const auto p = p_cpu.span(i)[static_cast<std::size_t>(k)];
            ASSERT_GE(p, 0);
            ASSERT_LT(p, m);
            EXPECT_FALSE(seen[static_cast<std::size_t>(p)]);
            seen[static_cast<std::size_t>(p)] = true;
            EXPECT_EQ(p, p_simt.span(i)[static_cast<std::size_t>(k)]);
        }
    }
    for (size_type v = 0; v < layout->total_values(); ++v) {
        EXPECT_EQ(a_cpu.data()[v], a_simt.data()[v]);
    }
}

TEST_P(RandomBatches, ImplicitExplicitPivotingBitwise) {
    const auto seed = GetParam();
    const auto layout = random_layout(seed + 200, 16);
    auto a_i = BatchedMatrices<double>::random_general(layout, seed);
    auto a_e = a_i.clone();
    BatchedPivots p_i(layout), p_e(layout);
    core::getrf_batch(a_i, p_i);
    core::getrf_batch_explicit(a_e, p_e);
    for (size_type v = 0; v < layout->total_values(); ++v) {
        EXPECT_EQ(a_i.data()[v], a_e.data()[v]);
    }
}

TEST_P(RandomBatches, EagerLazySolvesAgree) {
    const auto seed = GetParam();
    const auto layout = random_layout(seed + 300, 12);
    auto a = BatchedMatrices<double>::random_diagonally_dominant(layout,
                                                                 seed);
    BatchedPivots perm(layout);
    core::getrf_batch(a, perm);
    auto b_eager = BatchedVectors<double>::random(layout, seed + 1);
    auto b_lazy = b_eager.clone();
    core::TrsvOptions eager, lazy;
    eager.variant = core::TrsvVariant::eager;
    lazy.variant = core::TrsvVariant::lazy;
    core::getrs_batch(a, perm, b_eager, eager);
    core::getrs_batch(a, perm, b_lazy, lazy);
    for (size_type v = 0; v < layout->total_rows(); ++v) {
        EXPECT_NEAR(b_eager.data()[v], b_lazy.data()[v],
                    1e-10 * std::max(1.0, std::abs(b_eager.data()[v])));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBatches,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

class RandomBlocking : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomBlocking, BlockingAlwaysPartitions) {
    const auto seed = GetParam();
    auto eng = make_engine(seed);
    const auto dofs = uniform_int(eng, 1, 6);
    const auto nx = uniform_int(eng, 3, 20);
    const auto ny = uniform_int(eng, 3, 20);
    const auto a = sparse::laplacian_2d<double>(nx, ny, dofs, seed);
    for (const index_type bound :
         {1, 2, 3, 5, 8, 12, 16, 24, 31, 32}) {
        blocking::BlockingOptions opts;
        opts.max_block_size = bound;
        const auto blocks = blocking::supervariable_blocking(a, opts);
        index_type sum = 0;
        for (const auto b : blocks) {
            ASSERT_GE(b, 1);
            ASSERT_LE(b, bound);
            sum += b;
        }
        ASSERT_EQ(sum, a.num_rows())
            << "bound " << bound << " dofs " << dofs;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBlocking,
                         ::testing::Values(5, 17, 29, 41, 53));

}  // namespace
}  // namespace vbatch
