// Tests for the Krylov solvers (IDR(s), BiCGSTAB, CG, GMRES).
#include "base/exception.hpp"
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/blas1.hpp"
#include "precond/block_jacobi.hpp"
#include "precond/preconditioner.hpp"
#include "precond/scalar_jacobi.hpp"
#include "solvers/bicgstab.hpp"
#include "solvers/cg.hpp"
#include "solvers/gmres.hpp"
#include "solvers/idr.hpp"
#include "sparse/generators.hpp"

namespace vbatch::solvers {
namespace {

/// ||b - A x|| / ||b||
double true_residual(const sparse::Csr<double>& a,
                     std::span<const double> b, std::span<const double> x) {
    std::vector<double> r(b.size());
    a.spmv(x, std::span<double>(r));
    for (std::size_t i = 0; i < r.size(); ++i) {
        r[i] = b[i] - r[i];
    }
    return blas::nrm2(std::span<const double>(r)) /
           blas::nrm2(std::span<const double>(b));
}

struct Problem {
    sparse::Csr<double> a;
    std::vector<double> b;
    std::vector<double> x;
};

Problem make_problem(sparse::Csr<double> a) {
    Problem p{std::move(a), {}, {}};
    p.b.assign(static_cast<std::size_t>(p.a.num_rows()), 1.0);
    p.x.assign(p.b.size(), 0.0);
    return p;
}

TEST(Cg, SolvesSpdSystem) {
    auto p = make_problem(sparse::laplacian_2d<double>(20, 20, 1));
    precond::IdentityPreconditioner<double> prec;
    const auto result = cg(p.a, std::span<const double>(p.b),
                           std::span<double>(p.x), prec);
    EXPECT_TRUE(result.converged());
    EXPECT_LT(true_residual(p.a, p.b, p.x), 1e-5);
    EXPECT_GT(result.iterations, 0);
    EXPECT_LT(result.relative_residual(), 1e-6);
}

TEST(Cg, JacobiPreconditioningReducesIterations) {
    // Badly scaled SPD system: diag Jacobi fixes the scaling.
    auto a = sparse::laplacian_2d<double>(16, 16, 1);
    std::vector<sparse::Triplet<double>> t;
    for (index_type i = 0; i < a.num_rows(); ++i) {
        const double s = (i % 2 == 0) ? 100.0 : 1.0;
        for (auto p = a.row_ptrs()[static_cast<std::size_t>(i)];
             p < a.row_ptrs()[static_cast<std::size_t>(i) + 1]; ++p) {
            const auto j = a.col_idxs()[static_cast<std::size_t>(p)];
            const double sj = (j % 2 == 0) ? 100.0 : 1.0;
            t.push_back({i, j,
                         s * sj * a.values()[static_cast<std::size_t>(p)]});
        }
    }
    auto scaled = sparse::Csr<double>::from_triplets(a.num_rows(),
                                                     a.num_cols(),
                                                     std::move(t));
    auto p1 = make_problem(scaled);
    auto p2 = make_problem(std::move(scaled));
    precond::IdentityPreconditioner<double> ident;
    precond::ScalarJacobi<double> jac(p2.a);
    const auto r1 = cg(p1.a, std::span<const double>(p1.b),
                       std::span<double>(p1.x), ident);
    const auto r2 = cg(p2.a, std::span<const double>(p2.b),
                       std::span<double>(p2.x), jac);
    EXPECT_TRUE(r2.converged());
    EXPECT_LT(r2.iterations, r1.iterations);
}

TEST(Bicgstab, SolvesNonsymmetricSystem) {
    auto p = make_problem(
        sparse::convection_diffusion_2d<double>(18, 18, 1, 15.0));
    precond::IdentityPreconditioner<double> prec;
    const auto result = bicgstab(p.a, std::span<const double>(p.b),
                                 std::span<double>(p.x), prec);
    EXPECT_TRUE(result.converged());
    EXPECT_LT(true_residual(p.a, p.b, p.x), 1e-5);
}

TEST(Gmres, SolvesNonsymmetricSystem) {
    auto p = make_problem(
        sparse::convection_diffusion_2d<double>(15, 15, 1, 25.0));
    precond::IdentityPreconditioner<double> prec;
    GmresOptions opts;
    opts.restart = 40;
    const auto result = gmres(p.a, std::span<const double>(p.b),
                              std::span<double>(p.x), prec, opts);
    EXPECT_TRUE(result.converged());
    EXPECT_LT(true_residual(p.a, p.b, p.x), 1e-5);
}

TEST(Idr, SolvesNonsymmetricSystem) {
    auto p = make_problem(
        sparse::convection_diffusion_2d<double>(18, 18, 1, 15.0));
    precond::IdentityPreconditioner<double> prec;
    const auto result = idr(p.a, std::span<const double>(p.b),
                            std::span<double>(p.x), prec);
    EXPECT_TRUE(result.converged());
    EXPECT_FALSE(result.breakdown());
    EXPECT_LT(true_residual(p.a, p.b, p.x), 1e-5);
}

TEST(Idr, ShadowDimensionHelps) {
    // IDR(4) should converge in fewer operator applications than IDR(1)
    // on a tough nonsymmetric problem (typical, not guaranteed -- use a
    // problem where the effect is robust).
    auto p1 = make_problem(
        sparse::convection_diffusion_2d<double>(22, 22, 1, 40.0));
    auto p4 = make_problem(
        sparse::convection_diffusion_2d<double>(22, 22, 1, 40.0));
    precond::IdentityPreconditioner<double> prec;
    IdrOptions o1;
    o1.s = 1;
    IdrOptions o4;
    o4.s = 4;
    const auto r1 = idr(p1.a, std::span<const double>(p1.b),
                        std::span<double>(p1.x), prec, o1);
    const auto r4 = idr(p4.a, std::span<const double>(p4.b),
                        std::span<double>(p4.x), prec, o4);
    ASSERT_TRUE(r4.converged());
    if (r1.converged()) {
        EXPECT_LT(r4.iterations, r1.iterations + 50);
    }
}

TEST(Idr, BlockJacobiBeatsIdentityOnBlockProblem) {
    const auto a = sparse::fem_block_matrix<double>(150, 8, 16, 2, 0.3, 17);
    auto p1 = make_problem(a);
    auto p2 = make_problem(a);
    precond::IdentityPreconditioner<double> ident;
    precond::BlockJacobiOptions opts;
    opts.max_block_size = 16;
    precond::BlockJacobi<double> bj(p2.a, opts);
    const auto r1 = idr(p1.a, std::span<const double>(p1.b),
                        std::span<double>(p1.x), ident);
    const auto r2 = idr(p2.a, std::span<const double>(p2.b),
                        std::span<double>(p2.x), bj);
    ASSERT_TRUE(r2.converged());
    EXPECT_LT(r2.iterations, r1.iterations);
    EXPECT_LT(true_residual(p2.a, p2.b, p2.x), 1e-5);
}

TEST(Idr, RespectsMaxIterations) {
    // An unpreconditioned Laplacian needs far more than 7 matvecs.
    auto p = make_problem(sparse::laplacian_2d<double>(40, 40, 1));
    precond::IdentityPreconditioner<double> prec;
    IdrOptions opts;
    opts.max_iters = 7;
    const auto result = idr(p.a, std::span<const double>(p.b),
                            std::span<double>(p.x), prec, opts);
    EXPECT_FALSE(result.converged());
    EXPECT_LE(result.iterations, 7);
}

TEST(Idr, RecordsResidualHistory) {
    auto p = make_problem(sparse::laplacian_2d<double>(10, 10, 1));
    precond::IdentityPreconditioner<double> prec;
    IdrOptions opts;
    opts.keep_residual_history = true;
    const auto result = idr(p.a, std::span<const double>(p.b),
                            std::span<double>(p.x), prec, opts);
    ASSERT_TRUE(result.converged());
    ASSERT_GT(result.residual_history.size(), 1u);
    EXPECT_DOUBLE_EQ(result.residual_history.front(),
                     result.initial_residual);
    EXPECT_LE(result.residual_history.back(),
              1e-6 * result.initial_residual * 1.0000001);
}

TEST(Idr, ZeroRhsConvergesImmediately) {
    auto a = sparse::laplacian_2d<double>(6, 6, 1);
    std::vector<double> b(static_cast<std::size_t>(a.num_rows()), 0.0);
    std::vector<double> x(b.size(), 0.0);
    precond::IdentityPreconditioner<double> prec;
    const auto result = idr(a, std::span<const double>(b),
                            std::span<double>(x), prec);
    EXPECT_TRUE(result.converged());
    EXPECT_EQ(result.iterations, 0);
}

TEST(Idr, NonzeroInitialGuess) {
    auto p = make_problem(sparse::laplacian_2d<double>(12, 12, 1));
    // Start from a partially-correct guess.
    for (std::size_t i = 0; i < p.x.size(); ++i) {
        p.x[i] = 0.1;
    }
    precond::IdentityPreconditioner<double> prec;
    const auto result = idr(p.a, std::span<const double>(p.b),
                            std::span<double>(p.x), prec);
    EXPECT_TRUE(result.converged());
    EXPECT_LT(true_residual(p.a, p.b, p.x), 1e-5);
}

TEST(Solvers, AllAgreeOnTheSolution) {
    const auto a = sparse::convection_diffusion_2d<double>(12, 12, 2, 5.0);
    const auto n = static_cast<std::size_t>(a.num_rows());
    std::vector<double> x_ref(n);
    for (std::size_t i = 0; i < n; ++i) {
        x_ref[i] = std::cos(0.05 * static_cast<double>(i));
    }
    std::vector<double> b(n);
    a.spmv(std::span<const double>(x_ref), std::span<double>(b));
    precond::ScalarJacobi<double> prec(a);
    SolverOptions opts;
    opts.rel_tol = 1e-10;

    std::vector<double> x1(n, 0.0), x2(n, 0.0), x3(n, 0.0);
    IdrOptions iopts;
    iopts.rel_tol = 1e-10;
    ASSERT_TRUE(idr(a, std::span<const double>(b), std::span<double>(x1),
                    prec, iopts)
                    .converged());
    ASSERT_TRUE(bicgstab(a, std::span<const double>(b),
                         std::span<double>(x2), prec, opts)
                    .converged());
    GmresOptions gopts;
    gopts.rel_tol = 1e-10;
    ASSERT_TRUE(gmres(a, std::span<const double>(b), std::span<double>(x3),
                      prec, gopts)
                    .converged());
    for (std::size_t i = 0; i < n; i += 17) {
        EXPECT_NEAR(x1[i], x_ref[i], 1e-6);
        EXPECT_NEAR(x2[i], x_ref[i], 1e-6);
        EXPECT_NEAR(x3[i], x_ref[i], 1e-6);
    }
}

TEST(Idr, SmoothingMonotoneAndCorrect) {
    auto p = make_problem(
        sparse::convection_diffusion_2d<double>(20, 20, 1, 30.0));
    precond::IdentityPreconditioner<double> prec;
    IdrOptions opts;
    opts.smoothing = true;
    opts.keep_residual_history = true;
    const auto result = idr(p.a, std::span<const double>(p.b),
                            std::span<double>(p.x), prec, opts);
    ASSERT_TRUE(result.converged());
    EXPECT_LT(true_residual(p.a, p.b, p.x), 1e-5);
    // The smoothed residual history is monotonically non-increasing.
    for (std::size_t i = 1; i < result.residual_history.size(); ++i) {
        EXPECT_LE(result.residual_history[i],
                  result.residual_history[i - 1] * (1.0 + 1e-12))
            << "at " << i;
    }
}

TEST(Idr, SmoothingAgreesWithPlainIdr) {
    auto p1 = make_problem(sparse::laplacian_2d<double>(15, 15, 2));
    auto p2 = make_problem(sparse::laplacian_2d<double>(15, 15, 2));
    precond::IdentityPreconditioner<double> prec;
    IdrOptions plain;
    IdrOptions smooth;
    smooth.smoothing = true;
    const auto r1 = idr(p1.a, std::span<const double>(p1.b),
                        std::span<double>(p1.x), prec, plain);
    const auto r2 = idr(p2.a, std::span<const double>(p2.b),
                        std::span<double>(p2.x), prec, smooth);
    ASSERT_TRUE(r1.converged());
    ASSERT_TRUE(r2.converged());
    // Both solve the system; iteration counts are in the same ballpark.
    EXPECT_LT(true_residual(p2.a, p2.b, p2.x), 1e-5);
    EXPECT_LT(std::abs(r1.iterations - r2.iterations),
              r1.iterations / 2 + 10);
}

TEST(Solvers, DimensionChecks) {
    auto a = sparse::laplacian_2d<double>(4, 4, 1);
    std::vector<double> b(5, 1.0), x(5, 0.0);
    precond::IdentityPreconditioner<double> prec;
    EXPECT_THROW(idr(a, std::span<const double>(b), std::span<double>(x),
                     prec),
                 DimensionMismatch);
}

}  // namespace
}  // namespace vbatch::solvers
