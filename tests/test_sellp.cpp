// Tests for the SELL-P sparse format.
#include <gtest/gtest.h>

#include <vector>

#include "base/exception.hpp"
#include "sparse/generators.hpp"
#include "sparse/sellp.hpp"

namespace vbatch::sparse {
namespace {

TEST(SellP, RoundTripsThroughCsr) {
    const auto csr = laplacian_2d<double>(9, 7, 2, 3);
    const auto sellp = SellP<double>::from_csr(csr, 8, 2);
    const auto back = sellp.to_csr();
    ASSERT_EQ(back.nnz(), csr.nnz());
    for (index_type i = 0; i < csr.num_rows(); ++i) {
        for (auto p = csr.row_ptrs()[static_cast<std::size_t>(i)];
             p < csr.row_ptrs()[static_cast<std::size_t>(i) + 1]; ++p) {
            const auto j = csr.col_idxs()[static_cast<std::size_t>(p)];
            EXPECT_EQ(back.at(i, j), csr.at(i, j));
        }
    }
}

class SellPConfigs
    : public ::testing::TestWithParam<std::tuple<index_type, index_type>> {};

TEST_P(SellPConfigs, SpmvMatchesCsr) {
    const auto [slice, align] = GetParam();
    const auto csr = circuit_like<double>(700, 3, 4, 60, 17);
    const auto sellp = SellP<double>::from_csr(csr, slice, align);
    std::vector<double> x(static_cast<std::size_t>(csr.num_cols()));
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = std::sin(0.01 * static_cast<double>(i));
    }
    std::vector<double> y1(static_cast<std::size_t>(csr.num_rows()), 1.0);
    std::vector<double> y2 = y1;
    csr.spmv(2.0, std::span<const double>(x), 0.5, std::span<double>(y1));
    sellp.spmv(2.0, std::span<const double>(x), 0.5, std::span<double>(y2));
    for (std::size_t i = 0; i < y1.size(); ++i) {
        EXPECT_NEAR(y1[i], y2[i], 1e-12 * std::max(1.0, std::abs(y1[i])));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SellPConfigs,
    ::testing::Combine(::testing::Values<index_type>(1, 8, 32, 64),
                       ::testing::Values<index_type>(1, 4)));

TEST(SellP, PaddingAccounting) {
    // 4 rows with nnz 1,1,1,5 in one slice of 4: width padded to 8
    // (alignment 4): stored = 32, nnz = 8.
    std::vector<Triplet<double>> t;
    for (index_type i = 0; i < 4; ++i) {
        t.push_back({i, i, 1.0});
    }
    for (index_type j = 0; j < 4; ++j) {
        if (j != 3) {
            t.push_back({3, j, 2.0});
        }
    }
    const auto csr = Csr<double>::from_triplets(4, 4, std::move(t));
    const auto sellp = SellP<double>::from_csr(csr, 4, 4);
    EXPECT_EQ(sellp.num_slices(), 1);
    EXPECT_EQ(sellp.nnz(), 7);
    EXPECT_EQ(sellp.stored_elements(), 16);  // width 4 x 4 rows
    EXPECT_NEAR(sellp.padding_overhead(), 1.0 - 7.0 / 16.0, 1e-12);
}

TEST(SellP, SlicingLimitsPaddingOnUnbalancedMatrices) {
    // One hub row: with a single slice (ELL), everything pads to the hub
    // width; with small slices only the hub's slice does.
    std::vector<Triplet<double>> t;
    const index_type n = 1024;
    for (index_type i = 0; i < n; ++i) {
        t.push_back({i, i, 2.0});
        if (i + 1 < n) {
            t.push_back({i, i + 1, -1.0});
        }
    }
    for (index_type j = 0; j < 400; ++j) {
        t.push_back({100, j + 200, 0.5});
    }
    const auto csr = Csr<double>::from_triplets(n, n, std::move(t));
    const auto ell = SellP<double>::from_csr(csr, csr.num_rows(), 1);
    const auto sellp = SellP<double>::from_csr(csr, 32, 1);
    // The hub width blows up every ELL row; slicing confines the damage
    // to the hub's slice, shrinking the stored footprint dramatically.
    EXPECT_LT(static_cast<double>(sellp.stored_elements()),
              0.1 * static_cast<double>(ell.stored_elements()));
    EXPECT_LT(sellp.padding_overhead(), ell.padding_overhead());
    EXPECT_EQ(sellp.nnz(), ell.nnz());
}

TEST(SellP, EmptyAndEdgeCases) {
    const auto empty = Csr<double>::from_triplets(3, 3, {});
    const auto sellp = SellP<double>::from_csr(empty, 2, 1);
    EXPECT_EQ(sellp.nnz(), 0);
    std::vector<double> x(3, 1.0), y(3, 5.0);
    sellp.spmv(std::span<const double>(x), std::span<double>(y));
    EXPECT_EQ(y[0], 0.0);
    EXPECT_THROW(SellP<double>::from_csr(empty, 0, 1), BadParameter);
    EXPECT_THROW(SellP<double>::from_csr(empty, 4, 0), BadParameter);
}

TEST(SellP, RowsNotMultipleOfSlice) {
    const auto csr = random_banded<double>(37, 2, 1.0, 5);
    const auto sellp = SellP<double>::from_csr(csr, 8, 1);
    EXPECT_EQ(sellp.num_slices(), 5);
    std::vector<double> x(37, 1.0), y1(37), y2(37);
    csr.spmv(std::span<const double>(x), std::span<double>(y1));
    sellp.spmv(std::span<const double>(x), std::span<double>(y2));
    for (std::size_t i = 0; i < 37; ++i) {
        EXPECT_NEAR(y1[i], y2[i], 1e-13);
    }
}

}  // namespace
}  // namespace vbatch::sparse
