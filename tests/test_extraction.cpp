// Tests for the diagonal-block extraction strategies.
#include "base/exception.hpp"
#include <gtest/gtest.h>

#include "blocking/extraction.hpp"
#include "blocking/supervariable.hpp"
#include "sparse/generators.hpp"

namespace vbatch::blocking {
namespace {

using core::make_layout;

TEST(ExtractCpu, PullsDiagonalBlocks) {
    // 4x4 matrix, blocks {2, 2}.
    auto a = sparse::Csr<double>::from_triplets(
        4, 4,
        {{0, 0, 1.0}, {0, 1, 2.0}, {0, 3, 9.0}, {1, 0, 3.0}, {1, 1, 4.0},
         {2, 2, 5.0}, {2, 3, 6.0}, {3, 2, 7.0}, {3, 3, 8.0}, {3, 0, 9.0}});
    const auto blocks = extract_diagonal_blocks(a, make_layout({2, 2}));
    const auto b0 = blocks.view(0);
    EXPECT_EQ(b0(0, 0), 1.0);
    EXPECT_EQ(b0(0, 1), 2.0);
    EXPECT_EQ(b0(1, 0), 3.0);
    EXPECT_EQ(b0(1, 1), 4.0);
    const auto b1 = blocks.view(1);
    EXPECT_EQ(b1(0, 0), 5.0);
    EXPECT_EQ(b1(1, 1), 8.0);
}

TEST(ExtractCpu, MissingEntriesStayZero) {
    auto a = sparse::Csr<double>::from_triplets(
        3, 3, {{0, 0, 1.0}, {1, 1, 2.0}, {2, 2, 3.0}});
    const auto blocks = extract_diagonal_blocks(a, make_layout({3}));
    const auto b = blocks.view(0);
    EXPECT_EQ(b(0, 1), 0.0);
    EXPECT_EQ(b(2, 0), 0.0);
    EXPECT_EQ(b(1, 1), 2.0);
}

TEST(ExtractCpu, RejectsNonPartition) {
    auto a = sparse::laplacian_2d<double>(4, 4, 1);
    EXPECT_THROW(extract_diagonal_blocks(a, make_layout({8, 4})),
                 BadParameter);
}

TEST(ExtractCpu, MatchesAtLookupOnStencil) {
    const auto a = sparse::laplacian_2d<double>(8, 8, 4);
    BlockingOptions opts;
    opts.max_block_size = 16;
    const auto layout = supervariable_layout(a, opts);
    const auto blocks = extract_diagonal_blocks(a, layout);
    for (size_type b = 0; b < layout->count(); ++b) {
        const auto r0 = static_cast<index_type>(layout->row_offset(b));
        const auto v = blocks.view(b);
        for (index_type i = 0; i < v.rows(); ++i) {
            for (index_type j = 0; j < v.cols(); ++j) {
                EXPECT_EQ(v(i, j), a.at(r0 + i, r0 + j));
            }
        }
    }
}

TEST(ExtractSimt, BothStrategiesMatchCpu) {
    const auto a = sparse::circuit_like<double>(600, 3, 4, 80, 21);
    BlockingOptions opts;
    opts.max_block_size = 16;
    const auto layout = supervariable_layout(a, opts);
    const auto ref = extract_diagonal_blocks(a, layout);
    const auto row = extract_blocks_simt_row(a, layout);
    const auto shared = extract_blocks_simt_shared(a, layout);
    for (size_type i = 0; i < layout->total_values(); ++i) {
        EXPECT_EQ(row.blocks.data()[i], ref.data()[i]);
        EXPECT_EQ(shared.blocks.data()[i], ref.data()[i]);
    }
}

TEST(ExtractSimt, SharedStrategyCoalescesOnUnbalancedMatrix) {
    // On a circuit-like matrix the row-per-lane strategy wastes
    // transactions (scattered index loads) and instruction slots (idle
    // lanes while the hub row streams) -- the motivation of Fig. 3.
    const auto a = sparse::circuit_like<double>(3000, 3, 8, 500, 33);
    BlockingOptions opts;
    opts.max_block_size = 16;
    opts.detect_supervariables = false;
    const auto layout = supervariable_layout(a, opts);
    const auto row = extract_blocks_simt_row(a, layout);
    const auto shared = extract_blocks_simt_shared(a, layout);
    EXPECT_GT(row.stats.load_transactions,
              2 * shared.stats.load_transactions);
}

TEST(ExtractSimt, UnbalancedMatrixWidensTheGap) {
    // The row-per-lane strategy loses ground as the nonzero distribution
    // becomes unbalanced; on a balanced banded matrix the two strategies
    // are comparatively close (Fig. 3's motivation).
    // Imbalance shows up as wasted warp *issues*: the row strategy runs as
    // many steps as the longest row while short-row lanes idle.
    const auto issue_ratio = [](const sparse::Csr<double>& a) {
        BlockingOptions opts;
        opts.max_block_size = 16;
        opts.detect_supervariables = false;
        const auto layout = supervariable_layout(a, opts);
        const auto row = extract_blocks_simt_row(a, layout);
        const auto shared = extract_blocks_simt_shared(a, layout);
        return static_cast<double>(row.stats.load_requests) /
               static_cast<double>(shared.stats.load_requests);
    };
    const double balanced =
        issue_ratio(sparse::random_banded<double>(2048, 4, 1.0, 9));
    const double unbalanced =
        issue_ratio(sparse::circuit_like<double>(3000, 3, 8, 500, 33));
    EXPECT_GT(unbalanced, balanced);
}

TEST(ExtractSimt, SharedUsesSharedMemory) {
    const auto a = sparse::laplacian_2d<double>(10, 10, 2);
    BlockingOptions opts;
    opts.max_block_size = 8;
    const auto layout = supervariable_layout(a, opts);
    const auto shared = extract_blocks_simt_shared(a, layout);
    EXPECT_GT(shared.stats.shared_accesses, 0);
    const auto row = extract_blocks_simt_row(a, layout);
    EXPECT_EQ(row.stats.shared_accesses, 0);
}

}  // namespace
}  // namespace vbatch::blocking
