// Cross-process determinism probe: runs every Krylov solver over the full
// hot path (nnz-balanced spmv, fused BLAS-1, block-Jacobi apply with both
// LU backends) and writes an FNV-1a hash of all solution bit patterns to
// argv[1]. CTest launches this binary under VBATCH_THREADS=1, 2 and 8 and
// compares the output files byte for byte -- the pool size is fixed at
// startup, so thread-count independence can only be proven across
// processes.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <random>
#include <span>
#include <vector>

#include "base/random.hpp"
#include "precond/block_jacobi.hpp"
#include "solvers/bicgstab.hpp"
#include "solvers/cg.hpp"
#include "solvers/gmres.hpp"
#include "solvers/idr.hpp"
#include "sparse/generators.hpp"

namespace {

struct Fnv1a {
    std::uint64_t state = 0xcbf29ce484222325ULL;
    void add(const void* data, std::size_t bytes) {
        const auto* p = static_cast<const unsigned char*>(data);
        for (std::size_t i = 0; i < bytes; ++i) {
            state ^= p[i];
            state *= 0x100000001b3ULL;
        }
    }
    void add_vector(const std::vector<double>& v) {
        add(v.data(), v.size() * sizeof(double));
    }
};

}  // namespace

int main(int argc, char** argv) {
    if (argc != 2) {
        std::fprintf(stderr, "usage: determinism_probe <output-file>\n");
        return 2;
    }
    using namespace vbatch;

    // Skewed-nnz system spanning several BLAS-1 chunks so both the spmv
    // partition and the chunked reductions actually split.
    const index_type n = 12000;
    const auto a = sparse::circuit_like<double>(n, 5, 6, 300, 17);
    const auto nz = static_cast<std::size_t>(n);
    std::vector<double> b(nz);
    auto eng = make_engine(123);
    for (auto& v : b) {
        v = uniform(eng, -1.0, 1.0);
    }

    Fnv1a hash;
    for (const auto backend : {precond::BlockJacobiBackend::lu,
                               precond::BlockJacobiBackend::lu_simd}) {
        precond::BlockJacobiOptions popts;
        popts.backend = backend;
        popts.max_block_size = 16;
        const precond::BlockJacobi<double> prec(a, popts);

        solvers::SolverOptions opts;
        opts.max_iters = 80;
        opts.rel_tol = 1e-10;

        std::vector<double> x(nz, 0.0);
        auto res = solvers::cg(a, std::span<const double>(b),
                               std::span<double>(x), prec, opts);
        hash.add_vector(x);
        hash.add(&res.iterations, sizeof(res.iterations));

        x.assign(nz, 0.0);
        res = solvers::bicgstab(a, std::span<const double>(b),
                                std::span<double>(x), prec, opts);
        hash.add_vector(x);
        hash.add(&res.iterations, sizeof(res.iterations));

        x.assign(nz, 0.0);
        solvers::IdrOptions iopts;
        iopts.max_iters = 80;
        iopts.rel_tol = 1e-10;
        res = solvers::idr(a, std::span<const double>(b),
                           std::span<double>(x), prec, iopts);
        hash.add_vector(x);
        hash.add(&res.iterations, sizeof(res.iterations));

        x.assign(nz, 0.0);
        solvers::GmresOptions gopts;
        gopts.max_iters = 80;
        gopts.rel_tol = 1e-10;
        gopts.restart = 20;
        res = solvers::gmres(a, std::span<const double>(b),
                             std::span<double>(x), prec, gopts);
        hash.add_vector(x);
        hash.add(&res.iterations, sizeof(res.iterations));
    }

    // Pivoting-free fast path: the butterfly coefficients are a pure
    // function of (seed, block), so the RBT setup -- including the
    // degeneracy monitor and the pivoted fallback on injected
    // near-singular blocks -- must be bitwise independent of the thread
    // count and scheduler mode too.
    {
        auto graded = a;
        const auto layout = blocking::supervariable_layout(
            graded, blocking::BlockingOptions{.max_block_size = 16});
        blocking::make_blocks_illcond(graded, *layout, 6);
        for (const auto backend : {precond::BlockJacobiBackend::lu,
                                   precond::BlockJacobiBackend::lu_simd}) {
            precond::BlockJacobiOptions popts;
            popts.backend = backend;
            popts.max_block_size = 16;
            popts.layout = layout;
            popts.pivot = precond::PivotScheme::rbt;
            const precond::BlockJacobi<double> prec(graded, popts);
            for (size_type bi = 0; bi < prec.factors().count(); ++bi) {
                const auto v = prec.factors().view(bi);
                for (index_type c = 0; c < v.cols(); ++c) {
                    for (index_type r = 0; r < v.rows(); ++r) {
                        const double x = v(r, c);
                        hash.add(&x, sizeof(x));
                    }
                }
            }
            const auto fellback = prec.rbt_fellback();
            hash.add(&fellback, sizeof(fellback));
            std::vector<double> z(nz, 0.0);
            prec.apply(std::span<const double>(b), std::span<double>(z));
            hash.add_vector(z);
        }
    }

    std::FILE* out = std::fopen(argv[1], "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", argv[1]);
        return 2;
    }
    std::fprintf(out, "%016llx\n",
                 static_cast<unsigned long long>(hash.state));
    std::fclose(out);
    return 0;
}
