// Unit tests for the base infrastructure: views, buffers, RNG, thread
// pool, statistics.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "base/exception.hpp"
#include "base/memory.hpp"
#include "base/random.hpp"
#include "base/span2d.hpp"
#include "base/statistics.hpp"
#include "base/thread_pool.hpp"
#include "base/timer.hpp"

namespace vbatch {
namespace {

TEST(MatrixView, IndexesColumnMajor) {
    std::vector<double> data(12);
    std::iota(data.begin(), data.end(), 0.0);
    MatrixView<double> v(data.data(), 3, 4);
    EXPECT_EQ(v(0, 0), 0.0);
    EXPECT_EQ(v(2, 0), 2.0);
    EXPECT_EQ(v(0, 1), 3.0);
    EXPECT_EQ(v(2, 3), 11.0);
}

TEST(MatrixView, RespectsLeadingDimension) {
    std::vector<double> data(20);
    std::iota(data.begin(), data.end(), 0.0);
    MatrixView<double> v(data.data(), 3, 4, 5);
    EXPECT_EQ(v(0, 1), 5.0);
    EXPECT_EQ(v(2, 3), 17.0);
    EXPECT_EQ(v.col(2), data.data() + 10);
}

TEST(MatrixView, SubmatrixSharesStorage) {
    std::vector<double> data(16, 0.0);
    MatrixView<double> v(data.data(), 4, 4);
    auto sub = v.submatrix(1, 2, 2, 2);
    sub(0, 0) = 7.0;
    EXPECT_EQ(v(1, 2), 7.0);
    EXPECT_EQ(sub.ld(), 4);
}

TEST(ConstMatrixView, ConvertsFromMutable) {
    std::vector<float> data(4, 1.0f);
    MatrixView<float> v(data.data(), 2, 2);
    ConstMatrixView<float> c = v;
    EXPECT_EQ(c(1, 1), 1.0f);
    EXPECT_EQ(c.rows(), 2);
}

TEST(AlignedBuffer, IsCacheLineAligned) {
    AlignedBuffer<double> buf(100);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) %
                  cache_line_bytes,
              0u);
    EXPECT_EQ(buf.size(), 100);
}

TEST(AlignedBuffer, ZerosInitializes) {
    auto buf = AlignedBuffer<int>::zeros(17);
    for (const int v : buf) {
        EXPECT_EQ(v, 0);
    }
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
    AlignedBuffer<int> a(4);
    a[0] = 42;
    AlignedBuffer<int> b(std::move(a));
    EXPECT_EQ(b[0], 42);
    EXPECT_EQ(a.size(), 0);
    EXPECT_EQ(a.data(), nullptr);
}

TEST(AlignedBuffer, RejectsNegativeSize) {
    EXPECT_THROW(AlignedBuffer<double>(-1), BadParameter);
}

TEST(Random, EnginesAreDeterministic) {
    auto e1 = make_engine(123, 5);
    auto e2 = make_engine(123, 5);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(e1(), e2());
    }
}

TEST(Random, SubstreamsDiffer) {
    auto e1 = make_engine(123, 0);
    auto e2 = make_engine(123, 1);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i) {
        any_diff |= (e1() != e2());
    }
    EXPECT_TRUE(any_diff);
}

TEST(Random, UniformRespectsBounds) {
    auto eng = make_engine(9);
    for (int i = 0; i < 1000; ++i) {
        const double v = uniform<double>(eng, -2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
    }
    for (int i = 0; i < 1000; ++i) {
        const auto v = uniform_int(eng, 4, 8);
        EXPECT_GE(v, 4);
        EXPECT_LE(v, 8);
    }
}

TEST(ThreadPool, RunsEveryIteration) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(0, 1000, [&](size_type i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (const auto& h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPool, HandlesEmptyAndOffsetRanges) {
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.parallel_for(5, 5, [&](size_type) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 0);
    std::atomic<size_type> sum{0};
    pool.parallel_for(10, 20, [&](size_type i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 145);  // 10 + 11 + ... + 19
}

TEST(ThreadPool, SequentialFallbackWithOneThread) {
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);
    std::vector<int> order;
    pool.parallel_for(0, 8, [&](size_type i) {
        order.push_back(static_cast<int>(i));
    });
    // Single participant executes in order.
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    }
}

TEST(ThreadPool, EveryGrainRunsEachIterationOnce) {
    // The batched drivers all dispatch per-entry loops with the shared
    // batch_entry_grain; whatever grain is chosen (explicit, automatic, or
    // larger than the range) must execute every index exactly once.
    ThreadPool pool(4);
    for (const size_type grain :
         {size_type{0}, size_type{1}, size_type{7}, batch_entry_grain,
          size_type{1000}}) {
        std::vector<std::atomic<int>> hits(500);
        pool.parallel_for(
            0, 500,
            [&](size_type i) {
                hits[static_cast<std::size_t>(i)].fetch_add(1);
            },
            grain);
        for (const auto& h : hits) {
            ASSERT_EQ(h.load(), 1) << "grain " << grain;
        }
    }
    EXPECT_EQ(batch_entry_grain, 64);
}

TEST(ThreadPool, ReusableAcrossJobs) {
    ThreadPool pool(3);
    for (int round = 0; round < 20; ++round) {
        std::atomic<size_type> sum{0};
        pool.parallel_for(0, 100, [&](size_type i) { sum.fetch_add(i); });
        EXPECT_EQ(sum.load(), 4950);
    }
}

TEST(Statistics, SummaryBasics) {
    const auto s = summarize({3.0, 1.0, 2.0, 4.0});
    EXPECT_EQ(s.count, 4);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_DOUBLE_EQ(s.median, 2.5);
    EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
}

TEST(Statistics, SummaryEmptyAndSingle) {
    EXPECT_EQ(summarize({}).count, 0);
    const auto s = summarize({7.5});
    EXPECT_DOUBLE_EQ(s.median, 7.5);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Histogram, BucketsAndOverflow) {
    Histogram h(0.0, 10.0, 5);
    h.add(-1.0);
    h.add(0.0);
    h.add(1.9);
    h.add(5.0);
    h.add(10.0);
    h.add(25.0);
    EXPECT_EQ(h.underflow(), 1);
    EXPECT_EQ(h.overflow(), 2);
    EXPECT_EQ(h.count(0), 2);
    EXPECT_EQ(h.count(2), 1);
    EXPECT_EQ(h.total(), 6);
    EXPECT_DOUBLE_EQ(h.center(0), 1.0);
    EXPECT_DOUBLE_EQ(h.edge(5), 10.0);
}

TEST(Histogram, RejectsBadConfig) {
    EXPECT_THROW(Histogram(1.0, 1.0, 4), BadParameter);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), BadParameter);
}

TEST(Statistics, SummaryCarriesTailPercentiles) {
    std::vector<double> values;
    for (int i = 1; i <= 100; ++i) {
        values.push_back(static_cast<double>(i));
    }
    const auto s = summarize(std::move(values));
    EXPECT_DOUBLE_EQ(s.p50, s.median);
    EXPECT_NEAR(s.p50, 50.5, 1e-12);
    EXPECT_NEAR(s.p95, 95.05, 1e-9);
    EXPECT_NEAR(s.p99, 99.01, 1e-9);
    // Degenerate samples collapse every percentile onto the value.
    const auto one = summarize({7.5});
    EXPECT_DOUBLE_EQ(one.p50, 7.5);
    EXPECT_DOUBLE_EQ(one.p95, 7.5);
    EXPECT_DOUBLE_EQ(one.p99, 7.5);
    EXPECT_DOUBLE_EQ(summarize({}).p99, 0.0);
}

TEST(Statistics, SortedPercentileInterpolatesAndClamps) {
    const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(sorted_percentile(sorted, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(sorted_percentile(sorted, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(sorted_percentile(sorted, 50.0), 2.5);
    EXPECT_DOUBLE_EQ(sorted_percentile(sorted, 25.0), 1.75);
    EXPECT_DOUBLE_EQ(sorted_percentile({}, 50.0), 0.0);
    EXPECT_DOUBLE_EQ(sorted_percentile({42.0}, 99.0), 42.0);
}

TEST(Histogram, PercentileReconstructsFromBuckets) {
    Histogram h(0.0, 10.0, 10);
    // 100 samples spread uniformly: 10 per bucket center.
    for (int b = 0; b < 10; ++b) {
        for (int r = 0; r < 10; ++r) {
            h.add(static_cast<double>(b) + 0.5);
        }
    }
    // Uniform occupancy: percentiles track the value range linearly,
    // within one bucket width of the exact answer.
    EXPECT_NEAR(h.percentile(50.0), 5.0, 1.0);
    EXPECT_NEAR(h.percentile(95.0), 9.5, 1.0);
    EXPECT_GE(h.percentile(99.0), h.percentile(95.0));
    EXPECT_GE(h.percentile(95.0), h.percentile(50.0));

    // Tails clamp to the histogram range.
    Histogram tails(0.0, 1.0, 2);
    tails.add(-5.0);
    tails.add(5.0);
    EXPECT_DOUBLE_EQ(tails.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(tails.percentile(100.0), 1.0);

    EXPECT_DOUBLE_EQ(Histogram(0.0, 1.0, 2).percentile(50.0), 0.0);
}

TEST(Timer, MeasuresElapsedTime) {
    Timer t;
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) {
        sink = sink + 1.0;
    }
    EXPECT_GE(t.seconds(), 0.0);
    double acc = 0.0;
    {
        ScopedTimer st(acc);
    }
    EXPECT_GE(acc, 0.0);
}

TEST(Exceptions, HierarchyIsCatchable) {
    try {
        throw SingularMatrix("boom", 7, 3);
    } catch (const Error& e) {
        const auto* s = dynamic_cast<const SingularMatrix*>(&e);
        ASSERT_NE(s, nullptr);
        EXPECT_EQ(s->batch_index(), 7);
        EXPECT_EQ(s->step(), 3);
    }
}

}  // namespace
}  // namespace vbatch
