// Unit tests for the observability subsystem: scoped-region tracer,
// metrics registry, JSON writer/parser and the bench-report schema.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "base/thread_pool.hpp"
#include "obs/bench_report.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simt/kernel_stats.hpp"

namespace vbatch {
namespace {

/// Arms the tracer for one test and restores the dormant state after.
class TracerGuard {
public:
    TracerGuard() {
        obs::Tracer::set_enabled(true);
        obs::Tracer::instance().clear();
    }
    ~TracerGuard() {
        obs::Tracer::instance().clear();
        obs::Tracer::set_enabled(false);
    }
};

/// All events of the calling process, flattened across threads.
std::vector<obs::TraceEvent> all_events() {
    std::vector<obs::TraceEvent> events;
    for (const auto& thread : obs::Tracer::instance().snapshot()) {
        events.insert(events.end(), thread.events.begin(),
                      thread.events.end());
    }
    return events;
}

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

TEST(Tracer, RecordsNestedRegionsWithDepth) {
    TracerGuard guard;
    {
        obs::TraceRegion outer("outer");
        {
            obs::TraceRegion inner("inner");
        }
    }
    const auto events = all_events();
    ASSERT_EQ(events.size(), 2u);
    // Regions complete inner-first.
    EXPECT_STREQ(events[0].name, "inner");
    EXPECT_EQ(events[0].depth, 1u);
    EXPECT_STREQ(events[1].name, "outer");
    EXPECT_EQ(events[1].depth, 0u);
    // The inner region's lifetime nests inside the outer one's.
    EXPECT_GE(events[0].ts_us, events[1].ts_us);
    EXPECT_LE(events[0].ts_us + events[0].dur_us,
              events[1].ts_us + events[1].dur_us + 1e-6);
}

TEST(Tracer, DisabledModeRecordsNothing) {
    obs::Tracer::set_enabled(false);
    obs::Tracer::instance().clear();
    {
        obs::TraceRegion region("ghost");
        obs::counter("ghost_counter", 42.0);
        obs::instant("ghost_instant");
    }
    EXPECT_TRUE(all_events().empty());
    EXPECT_FALSE(obs::trace_on());
}

TEST(Tracer, CountersAndInstantsCarryPayload) {
    TracerGuard guard;
    obs::counter("residual", 0.125);
    obs::instant("checkpoint");
    const auto events = all_events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].phase, obs::EventPhase::counter);
    EXPECT_DOUBLE_EQ(events[0].value, 0.125);
    EXPECT_EQ(events[1].phase, obs::EventPhase::instant);
}

TEST(Tracer, ThreadPoolWorkersRecordIntoOwnBuffers) {
    TracerGuard guard;
    constexpr size_type n = 256;
    std::atomic<int> ran{0};
    ThreadPool::global().parallel_for(
        0, n,
        [&](size_type) {
            obs::TraceRegion region("pool_task");
            ran.fetch_add(1, std::memory_order_relaxed);
        },
        1);
    EXPECT_EQ(ran.load(), n);
    size_type recorded = 0;
    for (const auto& thread : obs::Tracer::instance().snapshot()) {
        for (const auto& event : thread.events) {
            if (std::string_view(event.name) == "pool_task") {
                ++recorded;
                EXPECT_EQ(event.depth, 0u);
            }
        }
        EXPECT_EQ(thread.dropped, 0);
    }
    EXPECT_EQ(recorded, n);
}

TEST(Tracer, ChromeTraceRoundTrips) {
    TracerGuard guard;
    obs::set_thread_name("test-main");
    {
        obs::TraceRegion region("chrome_region");
        obs::counter("chrome_counter", 7.0);
    }
    std::ostringstream os;
    obs::Tracer::instance().write_chrome_trace(os);
    const auto doc = obs::parse_json(os.str());
    ASSERT_TRUE(doc.is_object());
    const auto* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->is_array());
    bool saw_region = false, saw_counter = false, saw_thread_name = false;
    for (const auto& e : events->items) {
        const auto* name = e.find("name");
        const auto* ph = e.find("ph");
        ASSERT_NE(name, nullptr);
        ASSERT_NE(ph, nullptr);
        if (name->string == "chrome_region" && ph->string == "X") {
            saw_region = true;
            EXPECT_NE(e.find("dur"), nullptr);
            EXPECT_NE(e.find("ts"), nullptr);
        }
        if (name->string == "chrome_counter" && ph->string == "C") {
            saw_counter = true;
        }
        if (name->string == "thread_name" && ph->string == "M") {
            saw_thread_name = true;
        }
    }
    EXPECT_TRUE(saw_region);
    EXPECT_TRUE(saw_counter);
    EXPECT_TRUE(saw_thread_name);
}

TEST(Tracer, NdjsonRoundTrips) {
    TracerGuard guard;
    {
        obs::TraceRegion region("nd_region");
    }
    obs::counter("nd_counter", 3.5);
    std::ostringstream os;
    obs::Tracer::instance().write_ndjson(os);
    std::istringstream in(os.str());
    std::string line;
    bool saw_region = false, saw_counter = false;
    while (std::getline(in, line)) {
        if (line.empty()) {
            continue;
        }
        const auto doc = obs::parse_json(line);  // throws on bad line
        ASSERT_TRUE(doc.is_object());
        const auto* type = doc.find("type");
        const auto* name = doc.find("name");
        ASSERT_NE(type, nullptr);
        ASSERT_NE(name, nullptr);
        if (name->string == "nd_region") {
            saw_region = true;
            EXPECT_EQ(type->string, "region");
        }
        if (name->string == "nd_counter") {
            saw_counter = true;
            EXPECT_EQ(type->string, "counter");
            EXPECT_DOUBLE_EQ(doc.find("value")->number, 3.5);
        }
    }
    EXPECT_TRUE(saw_region);
    EXPECT_TRUE(saw_counter);
}

// ---------------------------------------------------------------------
// JSON writer / parser
// ---------------------------------------------------------------------

TEST(JsonWriter, EmitsNestedStructures) {
    std::ostringstream os;
    obs::JsonWriter json(os);
    json.begin_object();
    json.key("a");
    json.value(std::int64_t{1});
    json.key("b");
    json.begin_array();
    json.value(true);
    json.null();
    json.value("x\"y");
    json.end_array();
    json.end_object();
    EXPECT_EQ(os.str(), R"({"a":1,"b":[true,null,"x\"y"]})");
}

TEST(JsonWriter, RejectsValueWithoutKeyInObject) {
    std::ostringstream os;
    obs::JsonWriter json(os);
    json.begin_object();
    EXPECT_THROW(json.value(1.0), std::logic_error);
}

TEST(JsonParser, ParsesScalarsAndNesting) {
    const auto doc =
        obs::parse_json(R"({"n": -2.5e2, "s": "aA\n", "l": [1, {}]})");
    ASSERT_TRUE(doc.is_object());
    EXPECT_DOUBLE_EQ(doc.find("n")->number, -250.0);
    EXPECT_EQ(doc.find("s")->string, "aA\n");
    ASSERT_TRUE(doc.find("l")->is_array());
    ASSERT_EQ(doc.find("l")->items.size(), 2u);
    EXPECT_TRUE(doc.find("l")->items[1].is_object());
}

TEST(JsonParser, RejectsMalformedInput) {
    EXPECT_THROW(obs::parse_json("{"), obs::JsonError);
    EXPECT_THROW(obs::parse_json("[1,]"), obs::JsonError);
    EXPECT_THROW(obs::parse_json("{} trailing"), obs::JsonError);
    EXPECT_THROW(obs::parse_json("\"unterminated"), obs::JsonError);
}

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

TEST(Registry, AggregatesCountersGaugesAndKernels) {
    obs::Registry registry;
    registry.add("launches", 1.0);
    registry.add("launches", 2.0);
    registry.set("blocks", 10.0);
    registry.set("blocks", 12.0);
    simt::KernelStats stats;
    stats.fp_instructions = 5;
    stats.useful_flops = 7;
    registry.record_kernel("getrf", stats, 100, 0.25);
    registry.record_kernel("getrf", stats, 50, 0.25);

    EXPECT_DOUBLE_EQ(registry.counter_value("launches"), 3.0);
    EXPECT_DOUBLE_EQ(registry.gauges().at("blocks"), 12.0);
    const auto kernels = registry.kernels();
    const auto& family = kernels.at("getrf");
    EXPECT_EQ(family.launches, 2);
    EXPECT_EQ(family.problems, 150);
    EXPECT_EQ(family.stats.fp_instructions, 10);
    EXPECT_EQ(family.stats.useful_flops, 14);
    EXPECT_DOUBLE_EQ(family.modeled_seconds, 0.5);

    registry.clear();
    EXPECT_TRUE(registry.counters().empty());
    EXPECT_TRUE(registry.kernels().empty());
}

TEST(Registry, JsonSnapshotRoundTrips) {
    obs::Registry registry;
    registry.add("c", 4.0);
    registry.set("g", 9.0);
    simt::KernelStats stats;
    stats.load_transactions = 11;
    registry.record_kernel("trsv", stats, 8);
    const auto doc = obs::parse_json(registry.to_json());
    EXPECT_DOUBLE_EQ(doc.find("counters")->find("c")->number, 4.0);
    EXPECT_DOUBLE_EQ(doc.find("gauges")->find("g")->number, 9.0);
    const auto* family = doc.find("kernel_stats")->find("trsv");
    ASSERT_NE(family, nullptr);
    EXPECT_DOUBLE_EQ(family->find("problems")->number, 8.0);
    EXPECT_DOUBLE_EQ(family->find("load_transactions")->number, 11.0);
}

TEST(KernelStats, OperatorPlusSumsEveryField) {
    using simt::KernelStats;
    // KernelStats is a plain aggregate of size_type counters; treat it as
    // an array so a newly added field that is missing from operator+=
    // fails this test instead of silently dropping its contribution.
    static_assert(sizeof(KernelStats) == 13 * sizeof(size_type),
                  "field added to KernelStats: extend operator+= and the "
                  "obs serializers, then update this test");
    constexpr std::size_t n = sizeof(KernelStats) / sizeof(size_type);
    KernelStats a, b;
    auto* pa = reinterpret_cast<size_type*>(&a);
    auto* pb = reinterpret_cast<size_type*>(&b);
    for (std::size_t i = 0; i < n; ++i) {
        pa[i] = static_cast<size_type>(i + 1);
        pb[i] = static_cast<size_type>(100 * (i + 1));
    }
    const KernelStats sum = a + b;
    const auto* ps = reinterpret_cast<const size_type*>(&sum);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(ps[i], static_cast<size_type>(101 * (i + 1)))
            << "field index " << i << " not summed by operator+";
    }
}

// ---------------------------------------------------------------------
// Bench report
// ---------------------------------------------------------------------

TEST(BenchReport, EmitsSchemaV1) {
    obs::BenchReport report("unit_test");
    report.config("device", "emulated");
    report.config("batch", size_type{40000});
    report.config("quick", true);
    report.phase("warmup", 0.5);
    report.phase("warmup", 0.25);  // accumulates
    report.series("gflops/lu", "batch", {{1000.0, 10.0}, {2000.0, 20.0}});

    const auto doc = obs::parse_json(report.to_json());
    ASSERT_TRUE(doc.is_object());
    EXPECT_DOUBLE_EQ(doc.find("schema_version")->number, 1.0);
    EXPECT_EQ(doc.find("name")->string, "unit_test");
    EXPECT_EQ(doc.find("config")->find("device")->string, "emulated");
    EXPECT_DOUBLE_EQ(doc.find("config")->find("batch")->number, 40000.0);
    EXPECT_TRUE(doc.find("config")->find("quick")->boolean);

    const auto* phases = doc.find("phases");
    ASSERT_TRUE(phases->is_array());
    ASSERT_EQ(phases->items.size(), 1u);
    EXPECT_DOUBLE_EQ(phases->items[0].find("seconds")->number, 0.75);

    const auto* series = doc.find("series");
    ASSERT_TRUE(series->is_array());
    ASSERT_EQ(series->items.size(), 1u);
    const auto& s = series->items[0];
    EXPECT_EQ(s.find("name")->string, "gflops/lu");
    EXPECT_EQ(s.find("unit")->string, "gflops");
    ASSERT_EQ(s.find("points")->items.size(), 2u);
    EXPECT_DOUBLE_EQ(s.find("points")->items[1].items[0].number, 2000.0);
    EXPECT_DOUBLE_EQ(s.find("points")->items[1].items[1].number, 20.0);

    EXPECT_NE(doc.find("counters"), nullptr);
    EXPECT_NE(doc.find("gauges"), nullptr);
    EXPECT_NE(doc.find("kernel_stats"), nullptr);
    EXPECT_GE(doc.find("wall_seconds")->number, 0.0);
}

}  // namespace
}  // namespace vbatch
