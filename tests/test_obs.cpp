// Unit tests for the observability subsystem: scoped-region tracer,
// metrics registry, JSON writer/parser and the bench-report schema.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "base/thread_pool.hpp"
#include "core/bytes.hpp"
#include "obs/bench_report.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/prof.hpp"
#include "obs/roofline.hpp"
#include "obs/trace.hpp"
#include "simt/kernel_stats.hpp"

namespace vbatch {
namespace {

/// Arms the tracer for one test and restores the dormant state after.
class TracerGuard {
public:
    TracerGuard() {
        obs::Tracer::set_enabled(true);
        obs::Tracer::instance().clear();
    }
    ~TracerGuard() {
        obs::Tracer::instance().clear();
        obs::Tracer::set_enabled(false);
    }
};

/// All events of the calling process, flattened across threads.
std::vector<obs::TraceEvent> all_events() {
    std::vector<obs::TraceEvent> events;
    for (const auto& thread : obs::Tracer::instance().snapshot()) {
        events.insert(events.end(), thread.events.begin(),
                      thread.events.end());
    }
    return events;
}

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

TEST(Tracer, RecordsNestedRegionsWithDepth) {
    TracerGuard guard;
    {
        obs::TraceRegion outer("outer");
        {
            obs::TraceRegion inner("inner");
        }
    }
    const auto events = all_events();
    ASSERT_EQ(events.size(), 2u);
    // Regions complete inner-first.
    EXPECT_STREQ(events[0].name, "inner");
    EXPECT_EQ(events[0].depth, 1u);
    EXPECT_STREQ(events[1].name, "outer");
    EXPECT_EQ(events[1].depth, 0u);
    // The inner region's lifetime nests inside the outer one's.
    EXPECT_GE(events[0].ts_us, events[1].ts_us);
    EXPECT_LE(events[0].ts_us + events[0].dur_us,
              events[1].ts_us + events[1].dur_us + 1e-6);
}

TEST(Tracer, DisabledModeRecordsNothing) {
    obs::Tracer::set_enabled(false);
    obs::Tracer::instance().clear();
    {
        obs::TraceRegion region("ghost");
        obs::counter("ghost_counter", 42.0);
        obs::instant("ghost_instant");
    }
    EXPECT_TRUE(all_events().empty());
    EXPECT_FALSE(obs::trace_on());
}

TEST(Tracer, CountersAndInstantsCarryPayload) {
    TracerGuard guard;
    obs::counter("residual", 0.125);
    obs::instant("checkpoint");
    const auto events = all_events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].phase, obs::EventPhase::counter);
    EXPECT_DOUBLE_EQ(events[0].value, 0.125);
    EXPECT_EQ(events[1].phase, obs::EventPhase::instant);
}

TEST(Tracer, ThreadPoolWorkersRecordIntoOwnBuffers) {
    TracerGuard guard;
    constexpr size_type n = 256;
    std::atomic<int> ran{0};
    ThreadPool::global().parallel_for(
        0, n,
        [&](size_type) {
            obs::TraceRegion region("pool_task");
            ran.fetch_add(1, std::memory_order_relaxed);
        },
        1);
    EXPECT_EQ(ran.load(), n);
    size_type recorded = 0;
    for (const auto& thread : obs::Tracer::instance().snapshot()) {
        for (const auto& event : thread.events) {
            if (std::string_view(event.name) == "pool_task") {
                ++recorded;
                EXPECT_EQ(event.depth, 0u);
            }
        }
        EXPECT_EQ(thread.dropped, 0);
    }
    EXPECT_EQ(recorded, n);
}

TEST(Tracer, ChromeTraceRoundTrips) {
    TracerGuard guard;
    obs::set_thread_name("test-main");
    {
        obs::TraceRegion region("chrome_region");
        obs::counter("chrome_counter", 7.0);
    }
    std::ostringstream os;
    obs::Tracer::instance().write_chrome_trace(os);
    const auto doc = obs::parse_json(os.str());
    ASSERT_TRUE(doc.is_object());
    const auto* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->is_array());
    bool saw_region = false, saw_counter = false, saw_thread_name = false;
    for (const auto& e : events->items) {
        const auto* name = e.find("name");
        const auto* ph = e.find("ph");
        ASSERT_NE(name, nullptr);
        ASSERT_NE(ph, nullptr);
        if (name->string == "chrome_region" && ph->string == "X") {
            saw_region = true;
            EXPECT_NE(e.find("dur"), nullptr);
            EXPECT_NE(e.find("ts"), nullptr);
        }
        if (name->string == "chrome_counter" && ph->string == "C") {
            saw_counter = true;
        }
        if (name->string == "thread_name" && ph->string == "M") {
            saw_thread_name = true;
        }
    }
    EXPECT_TRUE(saw_region);
    EXPECT_TRUE(saw_counter);
    EXPECT_TRUE(saw_thread_name);
}

TEST(Tracer, NdjsonRoundTrips) {
    TracerGuard guard;
    {
        obs::TraceRegion region("nd_region");
    }
    obs::counter("nd_counter", 3.5);
    std::ostringstream os;
    obs::Tracer::instance().write_ndjson(os);
    std::istringstream in(os.str());
    std::string line;
    bool saw_region = false, saw_counter = false;
    while (std::getline(in, line)) {
        if (line.empty()) {
            continue;
        }
        const auto doc = obs::parse_json(line);  // throws on bad line
        ASSERT_TRUE(doc.is_object());
        const auto* type = doc.find("type");
        const auto* name = doc.find("name");
        ASSERT_NE(type, nullptr);
        ASSERT_NE(name, nullptr);
        if (name->string == "nd_region") {
            saw_region = true;
            EXPECT_EQ(type->string, "region");
        }
        if (name->string == "nd_counter") {
            saw_counter = true;
            EXPECT_EQ(type->string, "counter");
            EXPECT_DOUBLE_EQ(doc.find("value")->number, 3.5);
        }
    }
    EXPECT_TRUE(saw_region);
    EXPECT_TRUE(saw_counter);
}

// ---------------------------------------------------------------------
// JSON writer / parser
// ---------------------------------------------------------------------

TEST(JsonWriter, EmitsNestedStructures) {
    std::ostringstream os;
    obs::JsonWriter json(os);
    json.begin_object();
    json.key("a");
    json.value(std::int64_t{1});
    json.key("b");
    json.begin_array();
    json.value(true);
    json.null();
    json.value("x\"y");
    json.end_array();
    json.end_object();
    EXPECT_EQ(os.str(), R"({"a":1,"b":[true,null,"x\"y"]})");
}

TEST(JsonWriter, RejectsValueWithoutKeyInObject) {
    std::ostringstream os;
    obs::JsonWriter json(os);
    json.begin_object();
    EXPECT_THROW(json.value(1.0), std::logic_error);
}

TEST(JsonParser, ParsesScalarsAndNesting) {
    const auto doc =
        obs::parse_json(R"({"n": -2.5e2, "s": "aA\n", "l": [1, {}]})");
    ASSERT_TRUE(doc.is_object());
    EXPECT_DOUBLE_EQ(doc.find("n")->number, -250.0);
    EXPECT_EQ(doc.find("s")->string, "aA\n");
    ASSERT_TRUE(doc.find("l")->is_array());
    ASSERT_EQ(doc.find("l")->items.size(), 2u);
    EXPECT_TRUE(doc.find("l")->items[1].is_object());
}

TEST(JsonParser, RejectsMalformedInput) {
    EXPECT_THROW(obs::parse_json("{"), obs::JsonError);
    EXPECT_THROW(obs::parse_json("[1,]"), obs::JsonError);
    EXPECT_THROW(obs::parse_json("{} trailing"), obs::JsonError);
    EXPECT_THROW(obs::parse_json("\"unterminated"), obs::JsonError);
}

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

TEST(Registry, AggregatesCountersGaugesAndKernels) {
    obs::Registry registry;
    registry.add("launches", 1.0);
    registry.add("launches", 2.0);
    registry.set("blocks", 10.0);
    registry.set("blocks", 12.0);
    simt::KernelStats stats;
    stats.fp_instructions = 5;
    stats.useful_flops = 7;
    registry.record_kernel("getrf", stats, 100, 0.25);
    registry.record_kernel("getrf", stats, 50, 0.25);

    EXPECT_DOUBLE_EQ(registry.counter_value("launches"), 3.0);
    EXPECT_DOUBLE_EQ(registry.gauges().at("blocks"), 12.0);
    const auto kernels = registry.kernels();
    const auto& family = kernels.at("getrf");
    EXPECT_EQ(family.launches, 2);
    EXPECT_EQ(family.problems, 150);
    EXPECT_EQ(family.stats.fp_instructions, 10);
    EXPECT_EQ(family.stats.useful_flops, 14);
    EXPECT_DOUBLE_EQ(family.modeled_seconds, 0.5);

    registry.clear();
    EXPECT_TRUE(registry.counters().empty());
    EXPECT_TRUE(registry.kernels().empty());
}

TEST(Registry, JsonSnapshotRoundTrips) {
    obs::Registry registry;
    registry.add("c", 4.0);
    registry.set("g", 9.0);
    simt::KernelStats stats;
    stats.load_transactions = 11;
    registry.record_kernel("trsv", stats, 8);
    const auto doc = obs::parse_json(registry.to_json());
    EXPECT_DOUBLE_EQ(doc.find("counters")->find("c")->number, 4.0);
    EXPECT_DOUBLE_EQ(doc.find("gauges")->find("g")->number, 9.0);
    const auto* family = doc.find("kernel_stats")->find("trsv");
    ASSERT_NE(family, nullptr);
    EXPECT_DOUBLE_EQ(family->find("problems")->number, 8.0);
    EXPECT_DOUBLE_EQ(family->find("load_transactions")->number, 11.0);
}

TEST(KernelStats, OperatorPlusSumsEveryField) {
    using simt::KernelStats;
    // KernelStats is a plain aggregate of size_type counters; treat it as
    // an array so a newly added field that is missing from operator+=
    // fails this test instead of silently dropping its contribution.
    static_assert(sizeof(KernelStats) == 13 * sizeof(size_type),
                  "field added to KernelStats: extend operator+= and the "
                  "obs serializers, then update this test");
    constexpr std::size_t n = sizeof(KernelStats) / sizeof(size_type);
    KernelStats a, b;
    auto* pa = reinterpret_cast<size_type*>(&a);
    auto* pb = reinterpret_cast<size_type*>(&b);
    for (std::size_t i = 0; i < n; ++i) {
        pa[i] = static_cast<size_type>(i + 1);
        pb[i] = static_cast<size_type>(100 * (i + 1));
    }
    const KernelStats sum = a + b;
    const auto* ps = reinterpret_cast<const size_type*>(&sum);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(ps[i], static_cast<size_type>(101 * (i + 1)))
            << "field index " << i << " not summed by operator+";
    }
}

// ---------------------------------------------------------------------
// Bench report
// ---------------------------------------------------------------------

TEST(BenchReport, EmitsSchemaV2) {
    obs::BenchReport report("unit_test");
    report.config("device", "emulated");
    report.config("batch", size_type{40000});
    report.config("quick", true);
    report.phase("warmup", 0.5);
    report.phase("warmup", 0.25);  // accumulates
    report.series("gflops/lu", "batch", {{1000.0, 10.0}, {2000.0, 20.0}});

    const auto doc = obs::parse_json(report.to_json());
    ASSERT_TRUE(doc.is_object());
    EXPECT_DOUBLE_EQ(doc.find("schema_version")->number, 2.0);
    EXPECT_EQ(doc.find("name")->string, "unit_test");
    EXPECT_EQ(doc.find("config")->find("device")->string, "emulated");
    EXPECT_DOUBLE_EQ(doc.find("config")->find("batch")->number, 40000.0);
    EXPECT_TRUE(doc.find("config")->find("quick")->boolean);

    const auto* phases = doc.find("phases");
    ASSERT_TRUE(phases->is_array());
    ASSERT_EQ(phases->items.size(), 1u);
    EXPECT_DOUBLE_EQ(phases->items[0].find("seconds")->number, 0.75);

    const auto* series = doc.find("series");
    ASSERT_TRUE(series->is_array());
    ASSERT_EQ(series->items.size(), 1u);
    const auto& s = series->items[0];
    EXPECT_EQ(s.find("name")->string, "gflops/lu");
    EXPECT_EQ(s.find("unit")->string, "gflops");
    ASSERT_EQ(s.find("points")->items.size(), 2u);
    EXPECT_DOUBLE_EQ(s.find("points")->items[1].items[0].number, 2000.0);
    EXPECT_DOUBLE_EQ(s.find("points")->items[1].items[1].number, 20.0);

    EXPECT_NE(doc.find("counters"), nullptr);
    EXPECT_NE(doc.find("gauges"), nullptr);
    EXPECT_NE(doc.find("kernel_stats"), nullptr);
    EXPECT_GE(doc.find("wall_seconds")->number, 0.0);

    // The v2 additions must be present even when nothing was recorded:
    // downstream tooling (vbatch_prof, the schema validator) relies on
    // the objects existing.
    ASSERT_NE(doc.find("traffic"), nullptr);
    EXPECT_TRUE(doc.find("traffic")->is_object());
    ASSERT_NE(doc.find("perf"), nullptr);
    EXPECT_TRUE(doc.find("perf")->is_object());
    const auto* pool = doc.find("pool");
    ASSERT_NE(pool, nullptr);
    ASSERT_TRUE(pool->is_object());
    EXPECT_NE(pool->find("workers"), nullptr);
    EXPECT_NE(pool->find("armed"), nullptr);
}

// ---------------------------------------------------------------------
// Byte models (core/bytes.hpp)
// ---------------------------------------------------------------------

TEST(ByteModels, DenseKernelsMatchClosedForms) {
    const double elem = sizeof(double);
    const double idx = sizeof(index_type);
    EXPECT_DOUBLE_EQ(core::getrf_bytes<double>(4),
                     2.0 * 16.0 * elem + 4.0 * idx);
    EXPECT_DOUBLE_EQ(core::getrs_bytes<double>(4),
                     (16.0 + 8.0) * elem + 4.0 * idx);
    EXPECT_DOUBLE_EQ(core::gemv_bytes<float>(3), (9.0 + 6.0) * sizeof(float));
    EXPECT_DOUBLE_EQ(core::spmv_bytes<double>(10, 30),
                     30.0 * (elem + idx) +
                         11.0 * static_cast<double>(sizeof(size_type)) +
                         20.0 * elem);
}

TEST(ByteModels, InterleavedChargesThePaddedClass) {
    // A 5x5 problem in a class padded to 8 streams the whole 8x8 slab;
    // a degenerate padding below m falls back to the dense charge.
    EXPECT_DOUBLE_EQ(core::getrf_bytes_interleaved<double>(5, 8),
                     core::getrf_bytes<double>(8));
    EXPECT_GT(core::getrf_bytes_interleaved<double>(5, 8),
              core::getrf_bytes<double>(5));
    EXPECT_DOUBLE_EQ(core::getrf_bytes_interleaved<double>(5, 0),
                     core::getrf_bytes<double>(5));
    EXPECT_DOUBLE_EQ(core::getrs_bytes_interleaved<double>(3, 4),
                     core::getrs_bytes<double>(4));
    EXPECT_DOUBLE_EQ(core::getrs_bytes_interleaved<double>(4, 4),
                     core::getrs_bytes<double>(4));
}

TEST(ByteModels, Blas1StreamCounts) {
    constexpr size_type n = 1000;
    const double v = static_cast<double>(n) * sizeof(double);
    EXPECT_DOUBLE_EQ(core::axpy_bytes<double>(n), 3.0 * v);
    EXPECT_DOUBLE_EQ(core::dot_bytes<double>(n), 2.0 * v);
    EXPECT_DOUBLE_EQ(core::nrm2_bytes<double>(n), v);
    EXPECT_DOUBLE_EQ(core::copy_bytes<double>(n), 2.0 * v);
    EXPECT_DOUBLE_EQ(core::xpby_bytes<double>(n), 3.0 * v);
    EXPECT_DOUBLE_EQ(core::fused_cg_update_bytes<double>(n), 6.0 * v);
    EXPECT_DOUBLE_EQ(core::fused_residual_norm2_bytes<double>(n), 3.0 * v);
}

// ---------------------------------------------------------------------
// Roofline (obs/roofline.hpp)
// ---------------------------------------------------------------------

TEST(Roofline, IntensityAndRoofFractionEdgeCases) {
    EXPECT_DOUBLE_EQ(obs::arithmetic_intensity(10.0, 4.0), 2.5);
    EXPECT_DOUBLE_EQ(obs::arithmetic_intensity(10.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(obs::fraction_of_roof(50.0, 100.0), 0.5);
    EXPECT_DOUBLE_EQ(obs::fraction_of_roof(50.0, 0.0), 0.0);
}

TEST(Roofline, TriadBytesScaleWithProblemSize) {
    // The modeled traffic is deterministic (3 streams of doubles) and
    // must grow linearly with the element count; timings only need to
    // be positive for the GB/s derivation to make sense.
    const auto small = obs::stream_triad(1 << 12, 1, 1);
    const auto large = obs::stream_triad(1 << 14, 1, 1);
    EXPECT_DOUBLE_EQ(small.bytes,
                     3.0 * static_cast<double>(1 << 12) * sizeof(double));
    EXPECT_DOUBLE_EQ(large.bytes, 4.0 * small.bytes);
    EXPECT_GT(small.seconds, 0.0);
    EXPECT_GT(large.seconds, 0.0);
    EXPECT_GT(small.gbs(), 0.0);
    EXPECT_GT(large.gbs(), 0.0);
    // Sub-minimum requests are clamped up, never undercounted.
    EXPECT_GE(obs::stream_triad(1, 1, 1).bytes,
              3.0 * 1024.0 * sizeof(double));
}

TEST(Roofline, MachineRoofIsPositiveCachedAndPublished) {
    const double roof = obs::machine_roof_gbs();
    EXPECT_GT(roof, 0.0);
    EXPECT_DOUBLE_EQ(obs::machine_roof_gbs(), roof);  // cached one-shot
    const auto gauges = obs::Registry::global().gauges();
    const auto it = gauges.find("roofline.triad_gbs");
    ASSERT_NE(it, gauges.end());
    EXPECT_DOUBLE_EQ(it->second, roof);
}

// ---------------------------------------------------------------------
// Hardware counters (obs/perf_counters.hpp)
// ---------------------------------------------------------------------

TEST(PerfCounters, DormantRegionRecordsNothing) {
    obs::set_perf_enabled(false);
    obs::Registry::global().clear();
    {
        obs::PerfRegion region("unit.perf.dormant");
    }
    EXPECT_FALSE(obs::perf_on());
    EXPECT_EQ(obs::Registry::global().perf().count("unit.perf.dormant"), 0u);
}

TEST(PerfCounters, ArmedRegionRecordsSecondsEvenWithoutHardware) {
    obs::Registry::global().clear();
    obs::set_perf_enabled(true);
    {
        obs::PerfRegion region("unit.perf.armed");
        volatile double sink = 0.0;
        for (int i = 0; i < 50000; ++i) {
            sink = sink + 1.0;
        }
    }
    obs::set_perf_enabled(false);
    const auto perf = obs::Registry::global().perf();
    const auto it = perf.find("unit.perf.armed");
    ASSERT_NE(it, perf.end());
    EXPECT_EQ(it->second.calls, 1u);
    EXPECT_GT(it->second.seconds, 0.0);
    if (!obs::perf_available()) {
        // Steady-clock-only fallback: wall time still lands, hardware
        // counts stay zero. This is the path a locked-down CI exercises.
        EXPECT_EQ(it->second.hardware_calls, 0u);
        EXPECT_DOUBLE_EQ(it->second.cycles, 0.0);
        EXPECT_DOUBLE_EQ(it->second.instructions, 0.0);
    } else {
        EXPECT_EQ(it->second.hardware_calls, 1u);
    }
}

TEST(PerfCounters, FallbackReadingReportsNoHardware) {
    if (obs::perf_available()) {
        GTEST_SKIP() << "hardware counters available; fallback not in play";
    }
    auto& counters = obs::PerfCounters::thread_local_instance();
    EXPECT_FALSE(counters.hardware());
    const auto reading = counters.read();
    EXPECT_FALSE(reading.hardware);
    EXPECT_DOUBLE_EQ(reading.cycles, 0.0);
    EXPECT_DOUBLE_EQ(reading.instructions, 0.0);
}

TEST(PerfCounters, HardwareCountersAdvanceAcrossWork) {
    if (!obs::perf_available()) {
        GTEST_SKIP() << "perf_event_open unavailable "
                        "(perf_event_paranoid / seccomp / non-Linux)";
    }
    auto& counters = obs::PerfCounters::thread_local_instance();
    ASSERT_TRUE(counters.hardware());
    const auto before = counters.read();
    volatile double sink = 0.0;
    for (int i = 0; i < 2000000; ++i) {
        sink = sink + 1.0;
    }
    const auto after = counters.read();
    EXPECT_TRUE(before.hardware);
    EXPECT_TRUE(after.hardware);
    EXPECT_GT(after.instructions, before.instructions);
    EXPECT_GT(after.cycles, before.cycles);
}

// ---------------------------------------------------------------------
// Registry: traffic, perf and pool aggregation
// ---------------------------------------------------------------------

TEST(Registry, TrafficAggregatesAndDerivesRooflineQuantities) {
    obs::Registry registry;
    registry.record_traffic("fam", 100.0, 50.0, 2.0, 4, 10.0);
    registry.record_traffic("fam", 100.0, 50.0, 2.0, 4);
    const auto traffic = registry.traffic();
    const auto& t = traffic.at("fam");
    EXPECT_DOUBLE_EQ(t.flops, 200.0);
    EXPECT_DOUBLE_EQ(t.bytes, 100.0);
    EXPECT_DOUBLE_EQ(t.seconds, 4.0);
    EXPECT_EQ(t.calls, 2u);
    EXPECT_EQ(t.problems, 8u);
    EXPECT_DOUBLE_EQ(t.roof_gbs, 10.0);  // last *nonzero* roof sticks
    EXPECT_DOUBLE_EQ(t.gflops(), 200.0 / 4.0 * 1e-9);
    EXPECT_DOUBLE_EQ(t.bandwidth_gbs(), 100.0 / 4.0 * 1e-9);
    EXPECT_DOUBLE_EQ(t.arithmetic_intensity(), 2.0);
    EXPECT_DOUBLE_EQ(t.fraction_of_roof(), t.bandwidth_gbs() / 10.0);

    obs::TrafficStats unroofed;
    unroofed.bytes = 10.0e9;
    unroofed.seconds = 1.0;
    EXPECT_DOUBLE_EQ(unroofed.fraction_of_roof(), 0.0);
    EXPECT_DOUBLE_EQ(unroofed.fraction_of_roof(20.0), 0.5);
}

TEST(Registry, TrafficPerfAndPoolRoundTripThroughJson) {
    obs::Registry registry;
    registry.record_traffic("kernel", 2.0e9, 1.0e9, 1.0, 16, 100.0);
    obs::PerfRegionStats delta;
    delta.calls = 1;
    delta.hardware_calls = 1;
    delta.seconds = 0.5;
    delta.cycles = 100.0;
    delta.instructions = 200.0;
    registry.record_perf("region", delta);
    registry.record_perf("region", delta);

    const auto doc = obs::parse_json(registry.to_json());
    const auto* t = doc.find("traffic")->find("kernel");
    ASSERT_NE(t, nullptr);
    EXPECT_DOUBLE_EQ(t->find("gflops")->number, 2.0);
    EXPECT_DOUBLE_EQ(t->find("bandwidth_gbs")->number, 1.0);
    EXPECT_DOUBLE_EQ(t->find("arithmetic_intensity")->number, 2.0);
    EXPECT_DOUBLE_EQ(t->find("fraction_of_roof")->number, 0.01);
    EXPECT_DOUBLE_EQ(t->find("roof_gbs")->number, 100.0);
    EXPECT_DOUBLE_EQ(t->find("problems")->number, 16.0);

    const auto* p = doc.find("perf")->find("region");
    ASSERT_NE(p, nullptr);
    EXPECT_DOUBLE_EQ(p->find("calls")->number, 2.0);
    EXPECT_DOUBLE_EQ(p->find("hardware_calls")->number, 2.0);
    EXPECT_DOUBLE_EQ(p->find("seconds")->number, 1.0);
    EXPECT_DOUBLE_EQ(p->find("ipc")->number, 2.0);

    // A registry without a pool source still emits a complete (all
    // zero, disarmed) pool object so the schema stays uniform.
    const auto* pool = doc.find("pool");
    ASSERT_NE(pool, nullptr);
    EXPECT_DOUBLE_EQ(pool->find("workers")->number, 0.0);
    EXPECT_FALSE(pool->find("armed")->boolean);
}

TEST(Registry, PoolTelemetryFlowsFromGlobalPool) {
    ThreadPool::set_stats_enabled(true);
    ThreadPool::global().parallel_for(
        0, 4096, [](size_type) {}, 1);
    const auto pool = obs::Registry::global().pool_telemetry();
    ThreadPool::set_stats_enabled(false);
    EXPECT_TRUE(pool.armed);
    EXPECT_GE(pool.workers, 1u);
    EXPECT_GE(pool.dispatches + pool.inline_runs, 1u);
    EXPECT_GT(pool.wall_seconds, 0.0);
    EXPECT_GE(pool.idle_seconds, 0.0);
    EXPECT_GE(pool.utilization, 0.0);
    EXPECT_LE(pool.utilization, 1.0 + 1e-9);
}

// ---------------------------------------------------------------------
// vbatch_prof rendering (obs/prof.hpp)
// ---------------------------------------------------------------------

/// A minimal but schema-v2-shaped bench document for rendering tests.
const char* const canned_report_a = R"({
  "schema_version": 2, "name": "canned_a", "wall_seconds": 2.0,
  "config": {},
  "phases": [{"name": "solve", "seconds": 1.5},
             {"name": "setup", "seconds": 0.5}],
  "series": [{"name": "hotpath/spmv", "x_label": "n", "unit": "speedup",
              "points": [[1000, 2.0], [2000, 4.0]]},
             {"name": "gone/only_in_a", "x_label": "n", "unit": "gflops",
              "points": [[1, 1.0]]}],
  "counters": {}, "gauges": {}, "kernel_stats": {},
  "traffic": {"spmv": {"flops": 2.0e9, "bytes": 1.0e9, "seconds": 1.0,
                       "calls": 3, "problems": 0, "roof_gbs": 10.0,
                       "gflops": 2.0, "bandwidth_gbs": 1.0,
                       "arithmetic_intensity": 2.0,
                       "fraction_of_roof": 0.1}},
  "perf": {"cg::spmv": {"calls": 5, "hardware_calls": 5, "seconds": 0.25,
                        "cycles": 1000.0, "instructions": 2000.0,
                        "ipc": 2.0, "l1d_misses": 10.0,
                        "llc_misses": 1.0, "branch_misses": 2.0}},
  "pool": {"workers": 4, "armed": true, "wall_seconds": 2.0,
           "busy_seconds": 6.0, "idle_seconds": 2.0, "utilization": 0.75,
           "dispatches": 7, "inline_runs": 3,
           "mean_imbalance": 1.1, "last_imbalance": 1.2}
})";

const char* const canned_report_b = R"({
  "schema_version": 2, "name": "canned_b", "wall_seconds": 1.0,
  "config": {},
  "phases": [{"name": "solve", "seconds": 0.75},
             {"name": "verify", "seconds": 0.1}],
  "series": [{"name": "hotpath/spmv", "x_label": "n", "unit": "speedup",
              "points": [[1000, 3.0], [2000, 6.0]]},
             {"name": "new/only_in_b", "x_label": "n", "unit": "gbs",
              "points": [[1, 9.0]]}],
  "counters": {}, "gauges": {}, "kernel_stats": {},
  "traffic": {"spmv": {"flops": 2.0e9, "bytes": 1.0e9, "seconds": 0.5,
                       "calls": 3, "problems": 0, "roof_gbs": 10.0,
                       "gflops": 4.0, "bandwidth_gbs": 2.0,
                       "arithmetic_intensity": 2.0,
                       "fraction_of_roof": 0.2},
              "apply": {"flops": 1.0e9, "bytes": 1.0e9, "seconds": 1.0,
                        "calls": 1, "problems": 0, "roof_gbs": 10.0,
                        "gflops": 1.0, "bandwidth_gbs": 1.0,
                        "arithmetic_intensity": 1.0,
                        "fraction_of_roof": 0.1}},
  "perf": {}, "pool": {"workers": 1, "armed": false, "wall_seconds": 1.0,
           "busy_seconds": 0.0, "idle_seconds": 0.0, "utilization": 0.0,
           "dispatches": 0, "inline_runs": 0,
           "mean_imbalance": 0.0, "last_imbalance": 0.0}
})";

TEST(Prof, RenderReportShowsEverySection) {
    const auto doc = obs::parse_json(canned_report_a);
    const auto out = obs::prof::render_report(doc);
    EXPECT_NE(out.find("bench report: canned_a"), std::string::npos);
    // Phases sorted by seconds, with percent of wall.
    EXPECT_NE(out.find("solve"), std::string::npos);
    EXPECT_NE(out.find("75.0%"), std::string::npos);
    // Roofline row for the traffic family with its derived columns.
    EXPECT_NE(out.find("roofline"), std::string::npos);
    EXPECT_NE(out.find("spmv"), std::string::npos);
    EXPECT_NE(out.find("10.0%"), std::string::npos);  // fraction of roof
    // Pool utilization (armed -> busy/idle line present).
    EXPECT_NE(out.find("pool: 4 thread(s)"), std::string::npos);
    EXPECT_NE(out.find("utilization  75.0%"), std::string::npos);
    // Perf region table with IPC.
    EXPECT_NE(out.find("cg::spmv"), std::string::npos);
    EXPECT_NE(out.find("2.00"), std::string::npos);
}

TEST(Prof, RenderReportDisarmedPoolPointsAtEnvVar) {
    const auto doc = obs::parse_json(canned_report_b);
    const auto out = obs::prof::render_report(doc);
    EXPECT_NE(out.find("VBATCH_POOL_STATS"), std::string::npos);
}

TEST(Prof, RenderDiffMatchesByNameAndFlagsOneSided) {
    const auto base = obs::parse_json(canned_report_a);
    const auto current = obs::parse_json(canned_report_b);
    const auto out = obs::prof::render_diff(base, current);
    EXPECT_NE(out.find("canned_a -> canned_b"), std::string::npos);
    // Wall halved.
    EXPECT_NE(out.find("-50.0%"), std::string::npos);
    // Series matched by name: spmv speedup mean 3 -> 4.5 = +50%.
    EXPECT_NE(out.find("hotpath/spmv"), std::string::npos);
    EXPECT_NE(out.find("+50.0%"), std::string::npos);
    // One-sided entries are called out instead of silently dropped.
    EXPECT_NE(out.find("gone/only_in_a"), std::string::npos);
    EXPECT_NE(out.find("(gone)"), std::string::npos);
    EXPECT_NE(out.find("new/only_in_b"), std::string::npos);
    EXPECT_NE(out.find("(new)"), std::string::npos);
    // Roofline families: spmv bandwidth doubled, apply is new.
    EXPECT_NE(out.find("roofline families"), std::string::npos);
    EXPECT_NE(out.find("+100.0%"), std::string::npos);
}

TEST(Prof, RenderTraceAggregatesRegionsAndSkipsMalformedLines) {
    const std::string ndjson =
        "{\"type\":\"region\",\"name\":\"getrf\",\"dur_us\":100.0}\n"
        "{\"type\":\"region\",\"name\":\"getrf\",\"dur_us\":300.0}\n"
        "{\"type\":\"region\",\"name\":\"trsv\",\"dur_us\":50.0}\n"
        "{\"type\":\"counter\",\"name\":\"resid\",\"value\":1.0}\n"
        "this line is not json\n"
        "\n";
    const auto out = obs::prof::render_trace(ndjson);
    EXPECT_NE(out.find("4 events"), std::string::npos);
    EXPECT_NE(out.find("1 malformed"), std::string::npos);
    EXPECT_NE(out.find("2 distinct regions"), std::string::npos);
    EXPECT_NE(out.find("getrf"), std::string::npos);
    EXPECT_NE(out.find("trsv"), std::string::npos);
    // getrf: 2 calls, 0.4 total ms, mean 200 us, max 300 us.
    EXPECT_NE(out.find("200.00"), std::string::npos);
    EXPECT_NE(out.find("300.00"), std::string::npos);
}

TEST(Prof, RenderTraceHonorsTopN) {
    std::string ndjson;
    for (int r = 0; r < 5; ++r) {
        ndjson += "{\"type\":\"region\",\"name\":\"r" +
                  std::to_string(r) + "\",\"dur_us\":" +
                  std::to_string((r + 1) * 10) + "}\n";
    }
    obs::prof::Options opts;
    opts.top_n = 2;
    const auto out = obs::prof::render_trace(ndjson, opts);
    EXPECT_NE(out.find("5 distinct regions"), std::string::npos);
    EXPECT_NE(out.find("  r4 "), std::string::npos);  // biggest kept
    EXPECT_NE(out.find("  r3 "), std::string::npos);
    EXPECT_EQ(out.find("  r0 "), std::string::npos);  // smallest cut
}

}  // namespace
}  // namespace vbatch
