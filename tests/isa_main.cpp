// gtest main for the ISA-pinned test registrations (tests/CMakeLists.txt
// runs the SIMD-sensitive suites once per VBATCH_SIMD level). When
// VBATCH_SIMD_REQUIRE is set and the requested ISA is not available on
// this build/machine, exit with the ctest skip code instead of silently
// running at the clamped dispatch level -- so a skipped matrix entry
// shows up as SKIPPED, not as a false PASS.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "core/simd_dispatch.hpp"

namespace {

constexpr int skip_exit_code = 77;

}  // namespace

int main(int argc, char** argv) {
    ::testing::InitGoogleTest(&argc, argv);

    const char* require = std::getenv("VBATCH_SIMD_REQUIRE");
    const char* request = std::getenv("VBATCH_SIMD");
    if (require != nullptr && require[0] != '\0' && require[0] != '0' &&
        request != nullptr) {
        vbatch::core::SimdIsa isa;
        if (!vbatch::core::parse_simd_isa(request, isa)) {
            std::fprintf(stderr,
                         "VBATCH_SIMD_REQUIRE: unknown ISA '%s'\n", request);
            return skip_exit_code;
        }
        if (!vbatch::core::simd_isa_available(isa)) {
            std::fprintf(
                stderr,
                "VBATCH_SIMD_REQUIRE: ISA '%s' not available on this "
                "build/machine, skipping\n",
                request);
            return skip_exit_code;
        }
    }
    std::printf("dispatch: VBATCH_SIMD=%s -> %s\n",
                request != nullptr ? request : "(unset)",
                vbatch::core::simd_isa_name(
                    vbatch::core::detect_simd_isa()));
    return RUN_ALL_TESTS();
}
