// Unit tests for the variable-size batch descriptor and batch storage.
#include <gtest/gtest.h>

#include "core/batch_storage.hpp"

namespace vbatch::core {
namespace {

TEST(BatchLayout, UniformBatch) {
    const auto layout = BatchLayout::uniform(5, 8);
    EXPECT_EQ(layout.count(), 5);
    EXPECT_TRUE(layout.is_uniform());
    EXPECT_EQ(layout.max_size(), 8);
    EXPECT_EQ(layout.total_values(), 5 * 64);
    EXPECT_EQ(layout.total_rows(), 40);
    EXPECT_EQ(layout.value_offset(2), 128);
    EXPECT_EQ(layout.row_offset(3), 24);
}

TEST(BatchLayout, VariableBatch) {
    const BatchLayout layout({4, 7, 0, 32});
    EXPECT_FALSE(layout.is_uniform());
    EXPECT_EQ(layout.max_size(), 32);
    EXPECT_EQ(layout.total_values(), 16 + 49 + 0 + 1024);
    EXPECT_EQ(layout.total_rows(), 43);
    EXPECT_EQ(layout.value_offset(1), 16);
    EXPECT_EQ(layout.value_offset(3), 65);
    EXPECT_EQ(layout.size(2), 0);
}

TEST(BatchLayout, RejectsOversizedBlocks) {
    EXPECT_THROW(BatchLayout({4, 33}), BadParameter);
    EXPECT_THROW(BatchLayout::uniform(3, -1), BadParameter);
}

TEST(BatchLayout, EmptyBatch) {
    const auto layout = BatchLayout::uniform(0, 16);
    EXPECT_EQ(layout.count(), 0);
    EXPECT_EQ(layout.total_values(), 0);
    EXPECT_TRUE(layout.is_uniform());
}

TEST(BatchLayout, EqualityComparesSizes) {
    EXPECT_TRUE(BatchLayout({2, 3}) == BatchLayout({2, 3}));
    EXPECT_FALSE(BatchLayout({2, 3}) == BatchLayout({3, 2}));
}

TEST(BatchedMatrices, ViewsAddressDisjointSlices) {
    auto layout = make_layout({2, 3});
    BatchedMatrices<double> batch(layout);
    auto v0 = batch.view(0);
    auto v1 = batch.view(1);
    EXPECT_EQ(v0.rows(), 2);
    EXPECT_EQ(v1.rows(), 3);
    EXPECT_EQ(v1.data(), batch.data() + 4);
    v0(1, 1) = 5.0;
    v1(2, 2) = 7.0;
    EXPECT_EQ(batch.data()[3], 5.0);
    EXPECT_EQ(batch.data()[4 + 8], 7.0);
}

TEST(BatchedMatrices, ZeroInitialized) {
    BatchedMatrices<float> batch(make_uniform_layout(3, 4));
    for (size_type i = 0; i < 3 * 16; ++i) {
        EXPECT_EQ(batch.data()[i], 0.0f);
    }
}

TEST(BatchedMatrices, RandomDiagonallyDominantIsDominantPerBlock) {
    auto batch = BatchedMatrices<double>::random_diagonally_dominant(
        make_layout({5, 9, 17}), 77);
    for (size_type b = 0; b < batch.count(); ++b) {
        const auto v = batch.view(b);
        for (index_type i = 0; i < v.rows(); ++i) {
            double off = 0;
            for (index_type j = 0; j < v.cols(); ++j) {
                if (i != j) {
                    off += std::abs(v(i, j));
                }
            }
            EXPECT_GT(std::abs(v(i, i)), off);
        }
    }
}

TEST(BatchedMatrices, EntryDataIndependentOfBatchPosition) {
    // Entry data depends on (seed, index) only -- dispatch-order safe.
    auto b1 = BatchedMatrices<double>::random_general(
        make_uniform_layout(4, 6), 5);
    auto b2 = BatchedMatrices<double>::random_general(
        make_uniform_layout(10, 6), 5);
    const auto v1 = b1.view(3);
    const auto v2 = b2.view(3);
    for (index_type j = 0; j < 6; ++j) {
        for (index_type i = 0; i < 6; ++i) {
            EXPECT_EQ(v1(i, j), v2(i, j));
        }
    }
}

TEST(BatchedMatrices, CloneIsDeep) {
    auto batch = BatchedMatrices<double>::random_general(
        make_uniform_layout(2, 3), 1);
    auto copy = batch.clone();
    copy.view(0)(0, 0) += 1.0;
    EXPECT_NE(copy.view(0)(0, 0), batch.view(0)(0, 0));
}

TEST(BatchedVectors, SpansAndFactories) {
    auto layout = make_layout({3, 1, 4});
    auto ones = BatchedVectors<double>::ones(layout);
    EXPECT_EQ(ones.span(2).size(), 4u);
    EXPECT_EQ(ones.span(1)[0], 1.0);
    auto rnd = BatchedVectors<double>::random(layout, 3);
    auto rnd2 = BatchedVectors<double>::random(layout, 3);
    EXPECT_EQ(rnd.span(2)[3], rnd2.span(2)[3]);
    auto c = rnd.clone();
    c.span(0)[0] += 2.0;
    EXPECT_NE(c.span(0)[0], rnd.span(0)[0]);
}

TEST(BatchedPivots, LayoutAndSpans) {
    BatchedPivots piv(make_layout({2, 5}));
    EXPECT_EQ(piv.count(), 2);
    EXPECT_EQ(piv.span(1).size(), 5u);
    piv.span(1)[4] = 3;
    EXPECT_EQ(piv.span(1)[4], 3);
}

}  // namespace
}  // namespace vbatch::core
