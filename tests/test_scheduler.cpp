// Work-stealing scheduler tests: the Chase-Lev deque's exactly-once
// contract under a multi-thief storm (the TSan target of the CI
// sanitizer job), pool teardown with work still queued, nested
// parallel_for storms, and in-process A/B between the two scheduling
// modes.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/thread_pool.hpp"
#include "base/types.hpp"
#include "base/work_deque.hpp"

namespace {

using vbatch::SchedMode;
using vbatch::size_type;
using vbatch::StealResult;
using vbatch::ThreadPool;
using vbatch::WorkDeque;

struct Item {
    std::atomic<int> taken{0};
};

TEST(WorkDeque, OwnerLifoThiefFifo) {
    WorkDeque<Item> dq;
    std::vector<Item> items(3);
    for (auto& item : items) {
        dq.push(&item);
    }
    EXPECT_EQ(dq.approx_size(), 3);
    // Owner pops the most recently pushed...
    EXPECT_EQ(dq.pop(), &items[2]);
    // ...while a thief takes the oldest.
    Item* stolen = nullptr;
    EXPECT_EQ(dq.steal(&stolen), StealResult::got);
    EXPECT_EQ(stolen, &items[0]);
    EXPECT_EQ(dq.pop(), &items[1]);
    EXPECT_EQ(dq.pop(), nullptr);
    EXPECT_EQ(dq.steal(&stolen), StealResult::empty);
    EXPECT_TRUE(dq.empty());
}

TEST(WorkDeque, GrowsPastInitialCapacity) {
    WorkDeque<Item> dq(8);
    const std::size_t n = 1000;
    std::vector<Item> items(n);
    for (auto& item : items) {
        dq.push(&item);
    }
    EXPECT_GE(dq.capacity(), n);
    EXPECT_EQ(dq.approx_size(), static_cast<size_type>(n));
    // LIFO drain returns every item exactly once, newest first.
    for (std::size_t i = n; i-- > 0;) {
        EXPECT_EQ(dq.pop(), &items[i]);
    }
    EXPECT_EQ(dq.pop(), nullptr);
}

// The TSan centerpiece: one owner interleaving push/pop against a storm
// of thieves, with the ring forced to grow under load (tiny initial
// capacity). Every item must be taken exactly once, by whoever.
TEST(WorkDeque, StressOwnerVsThiefStorm) {
    constexpr std::size_t num_items = 20000;
    constexpr int num_thieves = 4;
    WorkDeque<Item> dq(8);
    std::vector<Item> items(num_items);
    std::atomic<bool> done{false};
    std::atomic<std::size_t> taken_total{0};

    const auto take = [&](Item* item) {
        ASSERT_NE(item, nullptr);
        EXPECT_EQ(item->taken.fetch_add(1, std::memory_order_relaxed), 0);
        taken_total.fetch_add(1, std::memory_order_relaxed);
    };

    std::vector<std::thread> thieves;
    thieves.reserve(num_thieves);
    for (int t = 0; t < num_thieves; ++t) {
        thieves.emplace_back([&] {
            while (!done.load(std::memory_order_acquire)) {
                Item* item = nullptr;
                if (dq.steal(&item) == StealResult::got) {
                    take(item);
                }
            }
        });
    }

    // Owner: bursts of pushes interleaved with pops, so the deque cycles
    // through empty, one-element (the pop/steal race window), and
    // grow-triggering states.
    std::size_t pushed = 0;
    while (pushed < num_items) {
        const std::size_t burst = 1 + pushed % 7;
        for (std::size_t k = 0; k < burst && pushed < num_items; ++k) {
            dq.push(&items[pushed++]);
        }
        if (pushed % 3 != 0) {
            if (Item* item = dq.pop()) {
                take(item);
            }
        }
    }
    while (Item* item = dq.pop()) {
        take(item);
    }
    // Items the thieves grabbed between our last pop and now are already
    // counted; wait for the tally to close before stopping them.
    while (taken_total.load(std::memory_order_acquire) < num_items) {
        std::this_thread::yield();
    }
    done.store(true, std::memory_order_release);
    for (auto& t : thieves) {
        t.join();
    }

    EXPECT_EQ(taken_total.load(), num_items);
    for (auto& item : items) {
        EXPECT_EQ(item.taken.load(), 1);
    }
}

// Destroying a pool with tasks still queued must run every task exactly
// once (the submit() never-lost contract), in both modes, including
// tasks sitting in per-worker deques because workers submitted them.
TEST(Scheduler, TeardownRunsQueuedTasks) {
    for (const SchedMode mode : {SchedMode::stealing, SchedMode::sharing}) {
        constexpr int num_tasks = 64;
        std::vector<std::atomic<int>> ran(num_tasks);
        {
            ThreadPool pool(4, mode);
            for (int i = 0; i < num_tasks; ++i) {
                pool.submit([&ran, &pool, i] {
                    ran[static_cast<std::size_t>(i)].fetch_add(
                        1, std::memory_order_relaxed);
                    // Worker-side resubmission exercises the own-deque
                    // push path under stealing.
                    if (i % 8 == 0) {
                        pool.submit([] {});
                    }
                });
            }
        }  // ~ThreadPool drains whatever has not run yet
        for (int i = 0; i < num_tasks; ++i) {
            EXPECT_EQ(ran[static_cast<std::size_t>(i)].load(), 1)
                << "task " << i << " mode "
                << (mode == SchedMode::stealing ? "stealing" : "sharing");
        }
    }
}

// Many tasks, each running a nested parallel_for, all on a small pool:
// the deadlock-prone shape (joins inside workers stealing from each
// other). Every (task, index) pair must execute exactly once.
TEST(Scheduler, NestedParallelForStorm) {
    constexpr int num_tasks = 24;
    constexpr int range = 512;
    ThreadPool pool(4, SchedMode::stealing);
    std::vector<std::atomic<int>> hits(
        static_cast<std::size_t>(num_tasks * range));
    std::atomic<int> tasks_done{0};
    for (int t = 0; t < num_tasks; ++t) {
        pool.submit([&, t] {
            pool.parallel_for(
                0, range,
                [&](size_type i) {
                    hits[static_cast<std::size_t>(t * range + i)].fetch_add(
                        1, std::memory_order_relaxed);
                },
                16);
            tasks_done.fetch_add(1, std::memory_order_release);
        });
    }
    while (tasks_done.load(std::memory_order_acquire) < num_tasks) {
        std::this_thread::yield();
    }
    for (const auto& h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

// External (non-worker) threads doing root parallel_for concurrently
// exercise the leased external deque slots and their exit-drain path.
TEST(Scheduler, ConcurrentExternalRootCalls) {
    constexpr int num_clients = 6;
    constexpr int range = 1024;
    ThreadPool pool(3, SchedMode::stealing);
    std::vector<std::atomic<int>> hits(
        static_cast<std::size_t>(num_clients * range));
    std::vector<std::thread> clients;
    clients.reserve(num_clients);
    for (int c = 0; c < num_clients; ++c) {
        clients.emplace_back([&, c] {
            pool.parallel_for(
                0, range,
                [&](size_type i) {
                    hits[static_cast<std::size_t>(c * range + i)].fetch_add(
                        1, std::memory_order_relaxed);
                },
                8);
        });
    }
    for (auto& t : clients) {
        t.join();
    }
    for (const auto& h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

// set_mode flips where new work is published; both disciplines must
// produce identical coverage on the same pool instance (the in-process
// A/B mechanism bench_scheduler relies on).
TEST(Scheduler, ModeFlipOnQuiescedPool) {
    ThreadPool pool(4, SchedMode::stealing);
    EXPECT_EQ(pool.mode(), SchedMode::stealing);
    constexpr int range = 2048;
    std::vector<std::atomic<int>> hits(range);
    const auto sweep = [&] {
        pool.parallel_for(
            0, range,
            [&](size_type i) {
                hits[static_cast<std::size_t>(i)].fetch_add(
                    1, std::memory_order_relaxed);
            },
            32);
    };
    sweep();
    pool.set_mode(SchedMode::sharing);
    EXPECT_EQ(pool.mode(), SchedMode::sharing);
    sweep();
    pool.set_mode(SchedMode::stealing);
    sweep();
    for (const auto& h : hits) {
        EXPECT_EQ(h.load(), 3);
    }
}

TEST(Scheduler, EnvSelectsMode) {
    // The probe defaults to stealing; only the literal "sharing" selects
    // the legacy pool. A default-constructed pool adopts the probe.
    const char* env = std::getenv("VBATCH_SCHED");
    const SchedMode expected =
        env != nullptr && std::string(env) == "sharing"
            ? SchedMode::sharing
            : SchedMode::stealing;
    EXPECT_EQ(vbatch::sched_mode_from_env(), expected);
    ThreadPool pool(2);
    EXPECT_EQ(pool.mode(), expected);
}

// Steal/split/park counters flow into PoolTelemetry when armed.
TEST(Scheduler, TelemetryCountsStealActivity) {
    ThreadPool::set_stats_enabled(true);
    ThreadPool pool(4, SchedMode::stealing);
    std::atomic<std::int64_t> sum{0};
    for (int rep = 0; rep < 8; ++rep) {
        pool.parallel_for(
            0, 4096,
            [&](size_type i) {
                sum.fetch_add(i % 3, std::memory_order_relaxed);
            },
            16);
    }
    const auto t = pool.telemetry();
    ThreadPool::set_stats_enabled(false);
    EXPECT_TRUE(t.armed);
    EXPECT_EQ(t.workers, 4);
    EXPECT_EQ(t.dispatches, 8);
    // Lazy splitting must have exposed work; on a loaded 1-core CI
    // machine thieves may or may not win races, so only splits are a
    // hard guarantee (the root splits as soon as its deque drains).
    EXPECT_GT(t.splits, 0);
    EXPECT_GE(t.steals, 0);
    EXPECT_GE(t.steal_fails, 0);
    EXPECT_GE(t.parks, 0);
}

// The satellite fix: nested inline runs (n <= grain inside a worker)
// must show up in inline_runs and the busy accounting instead of
// vanishing from vbatch_prof's utilization table.
TEST(Scheduler, NestedInlineRunsAreAccounted) {
    ThreadPool::set_stats_enabled(true);
    ThreadPool pool(2, SchedMode::sharing);
    const auto before = pool.telemetry();
    std::atomic<int> total{0};
    pool.parallel_for(
        0, 4,
        [&](size_type) {
            // Nested call, n <= grain: the inline fast path inside a
            // participating thread.
            pool.parallel_for(
                0, 2,
                [&](size_type) {
                    total.fetch_add(1, std::memory_order_relaxed);
                },
                8);
        },
        1);
    const auto after = pool.telemetry();
    ThreadPool::set_stats_enabled(false);
    EXPECT_EQ(total.load(), 8);
    EXPECT_GE(after.inline_runs - before.inline_runs, 4);
    EXPECT_GT(after.busy_seconds, 0.0);
}

}  // namespace
