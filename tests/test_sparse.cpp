// Tests for the CSR substrate and Matrix Market I/O.
#include "base/exception.hpp"
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/matrix_market.hpp"

namespace vbatch::sparse {
namespace {

Csr<double> small_matrix() {
    // [ 1 0 2 ]
    // [ 0 3 0 ]
    // [ 4 0 5 ]
    return Csr<double>::from_triplets(
        3, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}, {2, 0, 4.0},
               {2, 2, 5.0}});
}

TEST(Csr, FromTripletsSortsAndSums) {
    auto a = Csr<double>::from_triplets(
        2, 2, {{1, 1, 1.0}, {0, 0, 2.0}, {1, 1, 2.5}, {0, 1, -1.0}});
    EXPECT_EQ(a.nnz(), 3);
    EXPECT_EQ(a.at(0, 0), 2.0);
    EXPECT_EQ(a.at(0, 1), -1.0);
    EXPECT_EQ(a.at(1, 1), 3.5);
    EXPECT_EQ(a.at(1, 0), 0.0);
}

TEST(Csr, RejectsOutOfBoundsTriplets) {
    EXPECT_THROW(Csr<double>::from_triplets(2, 2, {{2, 0, 1.0}}),
                 BadParameter);
    EXPECT_THROW(Csr<double>::from_triplets(2, 2, {{0, -1, 1.0}}),
                 BadParameter);
}

TEST(Csr, ValidatesRawArrays) {
    // Non-monotone row_ptrs must be rejected.
    EXPECT_THROW(Csr<double>(2, 2, {0, 2, 1}, {0, 1}, {1.0, 2.0}),
                 BadParameter);
    // Unsorted columns within a row must be rejected.
    EXPECT_THROW(Csr<double>(1, 3, {0, 2}, {2, 0}, {1.0, 2.0}),
                 BadParameter);
}

TEST(Csr, SpmvMatchesDense) {
    const auto a = small_matrix();
    std::vector<double> x{1.0, 2.0, 3.0};
    std::vector<double> y(3, -1.0);
    a.spmv(std::span<const double>(x), std::span<double>(y));
    EXPECT_DOUBLE_EQ(y[0], 7.0);
    EXPECT_DOUBLE_EQ(y[1], 6.0);
    EXPECT_DOUBLE_EQ(y[2], 19.0);
    // alpha/beta form.
    a.spmv(2.0, std::span<const double>(x), 1.0, std::span<double>(y));
    EXPECT_DOUBLE_EQ(y[0], 21.0);
}

TEST(Csr, RowNnzAndAt) {
    const auto a = small_matrix();
    EXPECT_EQ(a.row_nnz(0), 2);
    EXPECT_EQ(a.row_nnz(1), 1);
    EXPECT_EQ(a.at(2, 2), 5.0);
    EXPECT_EQ(a.at(1, 2), 0.0);
    EXPECT_THROW(a.at(3, 0), BadParameter);
}

TEST(Csr, Transpose) {
    const auto a = small_matrix();
    const auto t = a.transpose();
    EXPECT_EQ(t.at(0, 2), 4.0);
    EXPECT_EQ(t.at(2, 0), 2.0);
    EXPECT_EQ(t.nnz(), a.nnz());
}

TEST(Csr, SymmetryCheck) {
    auto sym = Csr<double>::from_triplets(
        2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 0, 2.0}, {1, 1, 3.0}});
    EXPECT_TRUE(sym.is_symmetric(0.0));
    EXPECT_FALSE(small_matrix().is_symmetric(1e-10));
}

TEST(Csr, EmptyMatrix) {
    Csr<double> a;
    EXPECT_EQ(a.num_rows(), 0);
    EXPECT_EQ(a.nnz(), 0);
}

TEST(MatrixMarket, RoundTrip) {
    const auto a = small_matrix();
    std::stringstream ss;
    write_matrix_market(ss, a);
    const auto b = read_matrix_market<double>(ss);
    EXPECT_EQ(b.num_rows(), 3);
    EXPECT_EQ(b.nnz(), a.nnz());
    for (index_type i = 0; i < 3; ++i) {
        for (index_type j = 0; j < 3; ++j) {
            EXPECT_DOUBLE_EQ(b.at(i, j), a.at(i, j));
        }
    }
}

TEST(MatrixMarket, ReadsSymmetricStorage) {
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate real symmetric\n"
       << "% a comment\n"
       << "2 2 2\n"
       << "1 1 4.0\n"
       << "2 1 -1.5\n";
    const auto a = read_matrix_market<double>(ss);
    EXPECT_DOUBLE_EQ(a.at(0, 1), -1.5);
    EXPECT_DOUBLE_EQ(a.at(1, 0), -1.5);
    EXPECT_DOUBLE_EQ(a.at(0, 0), 4.0);
    EXPECT_EQ(a.nnz(), 3);
}

TEST(MatrixMarket, ReadsPatternAsOnes) {
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate pattern general\n"
       << "2 3 2\n"
       << "1 3\n"
       << "2 1\n";
    const auto a = read_matrix_market<double>(ss);
    EXPECT_DOUBLE_EQ(a.at(0, 2), 1.0);
    EXPECT_DOUBLE_EQ(a.at(1, 0), 1.0);
}

TEST(MatrixMarket, ReadsSkewSymmetric) {
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate real skew-symmetric\n"
       << "2 2 1\n"
       << "2 1 3.0\n";
    const auto a = read_matrix_market<double>(ss);
    EXPECT_DOUBLE_EQ(a.at(1, 0), 3.0);
    EXPECT_DOUBLE_EQ(a.at(0, 1), -3.0);
}

TEST(MatrixMarket, RejectsGarbage) {
    std::stringstream empty;
    EXPECT_THROW(read_matrix_market<double>(empty), IoError);
    std::stringstream bad_banner("hello world\n1 1 0\n");
    EXPECT_THROW(read_matrix_market<double>(bad_banner), IoError);
    std::stringstream bad_field;
    bad_field << "%%MatrixMarket matrix coordinate complex general\n"
              << "1 1 1\n1 1 1 0\n";
    EXPECT_THROW(read_matrix_market<double>(bad_field), IoError);
    std::stringstream oob;
    oob << "%%MatrixMarket matrix coordinate real general\n"
        << "2 2 1\n5 1 1.0\n";
    EXPECT_THROW(read_matrix_market<double>(oob), IoError);
    EXPECT_THROW(read_matrix_market_file<double>("/nonexistent/file.mtx"),
                 IoError);
}

}  // namespace
}  // namespace vbatch::sparse
