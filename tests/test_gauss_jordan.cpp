// Tests for the Gauss-Jordan explicit inversion (inversion-based
// block-Jacobi backend).
#include <gtest/gtest.h>

#include <cmath>

#include "blas/blas3.hpp"
#include "blas/dense_matrix.hpp"
#include "blas/lapack.hpp"
#include "core/gauss_jordan.hpp"

namespace vbatch::core {
namespace {

class GjeSizes : public ::testing::TestWithParam<index_type> {};

TEST_P(GjeSizes, InvertMatchesLapack) {
    const index_type m = GetParam();
    auto batch = BatchedMatrices<double>::random_general(
        make_uniform_layout(8, m), 700 + m);
    auto original = batch.clone();
    ASSERT_TRUE(gauss_jordan_batch(batch).ok());
    for (size_type b = 0; b < batch.count(); ++b) {
        DenseMatrix<double> dense(m, m), ref(m, m);
        for (index_type j = 0; j < m; ++j) {
            for (index_type i = 0; i < m; ++i) {
                dense(i, j) = original.view(b)(i, j);
            }
        }
        ASSERT_EQ(lapack::invert<double>(dense.view(), ref.view()), 0);
        for (index_type j = 0; j < m; ++j) {
            for (index_type i = 0; i < m; ++i) {
                EXPECT_NEAR(batch.view(b)(i, j), ref(i, j),
                            1e-9 * std::max(1.0, std::abs(ref(i, j))))
                    << b << " (" << i << "," << j << ")";
            }
        }
    }
}

TEST_P(GjeSizes, InverseTimesOriginalIsIdentity) {
    const index_type m = GetParam();
    auto batch = BatchedMatrices<double>::random_diagonally_dominant(
        make_uniform_layout(4, m), 800 + m);
    auto original = batch.clone();
    ASSERT_TRUE(gauss_jordan_batch(batch).ok());
    for (size_type b = 0; b < batch.count(); ++b) {
        DenseMatrix<double> a(m, m), inv(m, m);
        for (index_type j = 0; j < m; ++j) {
            for (index_type i = 0; i < m; ++i) {
                a(i, j) = original.view(b)(i, j);
                inv(i, j) = batch.view(b)(i, j);
            }
        }
        auto prod = DenseMatrix<double>::zeros(m, m);
        blas::gemm(1.0, a.view(), inv.view(), 0.0, prod.view());
        for (index_type j = 0; j < m; ++j) {
            for (index_type i = 0; i < m; ++i) {
                EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-10);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GjeSizes,
                         ::testing::Values(1, 2, 3, 4, 6, 9, 16, 25, 32));

TEST(GaussJordan, PivotingHandlesZeroDiagonal) {
    auto batch = BatchedMatrices<double>(make_uniform_layout(1, 2));
    auto v = batch.view(0);
    v(0, 1) = 1.0;
    v(1, 0) = 2.0;
    ASSERT_TRUE(gauss_jordan_batch(batch).ok());
    // inv([[0,1],[2,0]]) = [[0,0.5],[1,0]]
    EXPECT_NEAR(v(0, 0), 0.0, 1e-15);
    EXPECT_NEAR(v(0, 1), 0.5, 1e-15);
    EXPECT_NEAR(v(1, 0), 1.0, 1e-15);
    EXPECT_NEAR(v(1, 1), 0.0, 1e-15);
}

TEST(GaussJordan, SingularThrows) {
    BatchedMatrices<double> batch(make_uniform_layout(1, 4));
    EXPECT_THROW(gauss_jordan_batch(batch), SingularMatrix);
}

TEST(ApplyInverse, EqualsGemv) {
    auto layout = make_layout({3, 8, 15});
    auto batch = BatchedMatrices<double>::random_diagonally_dominant(layout,
                                                                     12);
    auto original = batch.clone();
    ASSERT_TRUE(gauss_jordan_batch(batch).ok());
    auto x = BatchedVectors<double>::random(layout, 77);
    auto x_orig = x.clone();
    apply_inverse_batch(batch, x);
    // Check A * (A^{-1} r) == r for each block.
    for (size_type b = 0; b < layout->count(); ++b) {
        const index_type m = layout->size(b);
        std::vector<double> back(static_cast<std::size_t>(m), 0.0);
        const auto a = original.view(b);
        for (index_type j = 0; j < m; ++j) {
            for (index_type i = 0; i < m; ++i) {
                back[static_cast<std::size_t>(i)] +=
                    a(i, j) * x.span(b)[static_cast<std::size_t>(j)];
            }
        }
        for (index_type i = 0; i < m; ++i) {
            EXPECT_NEAR(back[static_cast<std::size_t>(i)],
                        x_orig.span(b)[static_cast<std::size_t>(i)], 1e-10);
        }
    }
}

}  // namespace
}  // namespace vbatch::core
