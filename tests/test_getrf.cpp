// Tests for the variable-size batched LU with implicit pivoting -- the
// paper's primary contribution.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/blas2.hpp"
#include "blas/dense_matrix.hpp"
#include "blas/lapack.hpp"
#include "core/getrf.hpp"
#include "core/trsv.hpp"

namespace vbatch::core {
namespace {

/// Dense copy of a batch entry.
DenseMatrix<double> to_dense(ConstMatrixView<double> v) {
    DenseMatrix<double> m(v.rows(), v.cols());
    for (index_type j = 0; j < v.cols(); ++j) {
        for (index_type i = 0; i < v.rows(); ++i) {
            m(i, j) = v(i, j);
        }
    }
    return m;
}

/// ||PA - LU||_inf / ||A||_inf using the gather-index convention
/// (perm[k] = original row of pivot k).
double factor_residual(ConstMatrixView<double> a, ConstMatrixView<double> lu,
                       std::span<const index_type> perm) {
    const index_type n = a.rows();
    double err = 0, norm = 0;
    for (index_type i = 0; i < n; ++i) {
        double row_err = 0, row_norm = 0;
        for (index_type j = 0; j < n; ++j) {
            double acc = 0;
            for (index_type k = 0; k <= std::min(i, j); ++k) {
                acc += (k == i ? 1.0 : lu(i, k)) * lu(k, j);
            }
            row_err += std::abs(a(perm[static_cast<std::size_t>(i)], j) -
                                acc);
            row_norm += std::abs(a(i, j));
        }
        err = std::max(err, row_err);
        norm = std::max(norm, row_norm);
    }
    return norm > 0 ? err / norm : err;
}

class GetrfSizes : public ::testing::TestWithParam<index_type> {};

TEST_P(GetrfSizes, ImplicitFactorsAreCorrect) {
    const index_type m = GetParam();
    auto batch = BatchedMatrices<double>::random_general(
        make_uniform_layout(20, m), 1000 + m);
    auto original = batch.clone();
    BatchedPivots perm(batch.layout_ptr());
    const auto status = getrf_batch(batch, perm);
    EXPECT_TRUE(status.ok());
    for (size_type b = 0; b < batch.count(); ++b) {
        EXPECT_LT(factor_residual(original.view(b), batch.view(b),
                                  perm.span(b)),
                  1e-12 * m)
            << "entry " << b;
    }
}

TEST_P(GetrfSizes, ImplicitMatchesExplicitBitwise) {
    const index_type m = GetParam();
    auto implicit_batch = BatchedMatrices<double>::random_general(
        make_uniform_layout(10, m), 2000 + m);
    auto explicit_batch = implicit_batch.clone();
    BatchedPivots perm_i(implicit_batch.layout_ptr());
    BatchedPivots perm_e(explicit_batch.layout_ptr());
    getrf_batch(implicit_batch, perm_i);
    getrf_batch_explicit(explicit_batch, perm_e);
    for (size_type b = 0; b < implicit_batch.count(); ++b) {
        const auto vi = implicit_batch.view(b);
        const auto ve = explicit_batch.view(b);
        for (index_type j = 0; j < m; ++j) {
            for (index_type i = 0; i < m; ++i) {
                // Bitwise: same operations in the same order, only the data
                // movement differs.
                EXPECT_EQ(vi(i, j), ve(i, j)) << b << " " << i << "," << j;
            }
        }
        for (index_type k = 0; k < m; ++k) {
            EXPECT_EQ(perm_i.span(b)[static_cast<std::size_t>(k)],
                      perm_e.span(b)[static_cast<std::size_t>(k)]);
        }
    }
}

TEST_P(GetrfSizes, PermutationIsValid) {
    const index_type m = GetParam();
    auto batch = BatchedMatrices<double>::random_general(
        make_uniform_layout(5, m), 3000 + m);
    BatchedPivots perm(batch.layout_ptr());
    getrf_batch(batch, perm);
    for (size_type b = 0; b < batch.count(); ++b) {
        std::vector<bool> seen(static_cast<std::size_t>(m), false);
        for (const auto p : perm.span(b)) {
            ASSERT_GE(p, 0);
            ASSERT_LT(p, m);
            EXPECT_FALSE(seen[static_cast<std::size_t>(p)]);
            seen[static_cast<std::size_t>(p)] = true;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GetrfSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 11, 16, 23,
                                           31, 32));

TEST(Getrf, VariableSizeBatch) {
    std::vector<index_type> sizes;
    for (index_type m = 1; m <= 32; ++m) {
        sizes.push_back(m);
    }
    auto batch = BatchedMatrices<double>::random_general(
        make_layout(sizes), 99);
    auto original = batch.clone();
    BatchedPivots perm(batch.layout_ptr());
    EXPECT_TRUE(getrf_batch(batch, perm).ok());
    for (size_type b = 0; b < batch.count(); ++b) {
        EXPECT_LT(factor_residual(original.view(b), batch.view(b),
                                  perm.span(b)),
                  1e-11);
    }
}

TEST(Getrf, PivotingRescuesZeroDiagonal) {
    auto batch = BatchedMatrices<double>(make_uniform_layout(1, 2));
    auto v = batch.view(0);
    v(0, 0) = 0.0;
    v(0, 1) = 1.0;
    v(1, 0) = 1.0;
    v(1, 1) = 0.0;
    BatchedPivots perm(batch.layout_ptr());
    EXPECT_TRUE(getrf_batch(batch, perm).ok());
    EXPECT_EQ(perm.span(0)[0], 1);  // row 1 is the first pivot
}

TEST(Getrf, ThrowsOnSingularByDefault) {
    auto batch = BatchedMatrices<double>(make_uniform_layout(3, 4));
    // Middle entry is identically zero -> singular.
    auto v0 = batch.view(0);
    auto v2 = batch.view(2);
    for (index_type i = 0; i < 4; ++i) {
        v0(i, i) = 1.0;
        v2(i, i) = 2.0;
    }
    BatchedPivots perm(batch.layout_ptr());
    try {
        getrf_batch(batch, perm);
        FAIL() << "expected SingularMatrix";
    } catch (const SingularMatrix& e) {
        EXPECT_EQ(e.batch_index(), 1);
        EXPECT_EQ(e.step(), 1);
    }
}

TEST(Getrf, ReportPolicyContinues) {
    auto batch = BatchedMatrices<double>(make_uniform_layout(3, 4));
    auto v0 = batch.view(0);
    auto v2 = batch.view(2);
    for (index_type i = 0; i < 4; ++i) {
        v0(i, i) = 1.0;
        v2(i, i) = 2.0;
    }
    BatchedPivots perm(batch.layout_ptr());
    GetrfOptions opts;
    opts.on_singular = SingularPolicy::report;
    const auto status = getrf_batch(batch, perm, opts);
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.failures, 1);
    EXPECT_EQ(status.first_failure, 1);
    // The healthy entries factored fine: identity LU has unit diagonal.
    EXPECT_EQ(batch.view(2)(0, 0), 2.0);
}

TEST(Getrf, SequentialAndParallelAgree) {
    auto a1 = BatchedMatrices<double>::random_general(
        make_uniform_layout(64, 16), 4);
    auto a2 = a1.clone();
    BatchedPivots p1(a1.layout_ptr()), p2(a2.layout_ptr());
    GetrfOptions seq;
    seq.parallel = false;
    getrf_batch(a1, p1);
    getrf_batch(a2, p2, seq);
    for (size_type i = 0; i < a1.layout().total_values(); ++i) {
        EXPECT_EQ(a1.data()[i], a2.data()[i]);
    }
}

TEST(Getrf, MatchesLapackUpToPivotChoice) {
    // With distinct-magnitude columns the pivot sequences coincide, so the
    // factors must match LAPACK's (modulo the ipiv encoding).
    const index_type m = 8;
    auto dense = DenseMatrix<double>::random(m, m, 31);
    auto batch = BatchedMatrices<double>(make_uniform_layout(1, m));
    auto v = batch.view(0);
    for (index_type j = 0; j < m; ++j) {
        for (index_type i = 0; i < m; ++i) {
            v(i, j) = dense(i, j);
        }
    }
    BatchedPivots perm(batch.layout_ptr());
    getrf_batch(batch, perm);

    auto lu = dense.clone();
    std::vector<index_type> ipiv(static_cast<std::size_t>(m));
    ASSERT_EQ(lapack::getrf<double>(lu.view(), ipiv), 0);
    for (index_type j = 0; j < m; ++j) {
        for (index_type i = 0; i < m; ++i) {
            EXPECT_NEAR(v(i, j), lu(i, j), 1e-14);
        }
    }
}

TEST(Getrf, EmptyAndSizeOneBlocks) {
    auto batch = BatchedMatrices<double>(make_layout({0, 1}));
    batch.view(1)(0, 0) = -4.0;
    BatchedPivots perm(batch.layout_ptr());
    EXPECT_TRUE(getrf_batch(batch, perm).ok());
    EXPECT_EQ(batch.view(1)(0, 0), -4.0);
    EXPECT_EQ(perm.span(1)[0], 0);
}

TEST(Getrf, MismatchedLayoutsThrow) {
    BatchedMatrices<double> a(make_uniform_layout(2, 4));
    BatchedPivots perm(make_uniform_layout(2, 5));
    EXPECT_THROW(getrf_batch(a, perm), BadParameter);
}

}  // namespace
}  // namespace vbatch::core
