// Tests for the multi-tenant solve service: plan-cache sharing
// (one build, many reuses), fingerprint isolation, scalar-symbolic
// sharing across backends, LRU eviction under a byte budget, admission
// control (reject and block), concurrent request storms bitwise equal
// to serial execution, update_values equivalence with a fresh setup,
// the bounded queue, the solver factory, and the thread-safe lazy CSR
// partition these pieces lean on.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "base/exception.hpp"
#include "base/random.hpp"
#include "base/thread_pool.hpp"
#include "blocking/gather_plan.hpp"
#include "obs/metrics.hpp"
#include "precond/block_jacobi.hpp"
#include "service/engine.hpp"
#include "service/plan_cache.hpp"
#include "service/queue.hpp"
#include "solvers/config.hpp"
#include "solvers/idr.hpp"
#include "sparse/generators.hpp"

namespace vbatch::service {
namespace {

sparse::Csr<double> test_matrix(std::uint64_t seed = 42) {
    return sparse::fem_block_matrix<double>(30, 3, 8, 2, 0.25, seed);
}

/// Same pattern as `a`, different values (dominance-preserving scaling
/// keeps the blocks factorizable).
std::vector<double> perturbed_values(const sparse::Csr<double>& a,
                                     unsigned seed) {
    auto eng = make_engine(seed);
    std::vector<double> v(a.values().begin(), a.values().end());
    for (auto& x : v) {
        x *= uniform(eng, 0.9, 1.1);
    }
    return v;
}

SessionOptions lu_session(const std::string& backend = "lu") {
    SessionOptions opts;
    opts.precond.backend = backend;
    opts.precond.max_block_size = 12;
    opts.solver.method = "idr";
    opts.solver.rel_tol = 1e-8;
    return opts;
}

// -- plan cache -------------------------------------------------------

TEST(PlanCache, SamePatternBuildsOnceAndShares) {
    obs::Registry::global().clear();
    Engine engine;
    const auto a = test_matrix();
    constexpr int tenants = 8;
    std::vector<SessionPtr<double>> sessions;
    for (int t = 0; t < tenants; ++t) {
        auto m = a;
        m.set_values(perturbed_values(a, 100 + t));
        sessions.push_back(engine.open_session(std::move(m), lu_session()));
        EXPECT_TRUE(sessions.back()->plan_shared());
    }
    const auto stats = engine.stats();
    EXPECT_EQ(stats.cache.builds, 1u);
    EXPECT_EQ(stats.cache.reuses, static_cast<std::size_t>(tenants - 1));
    EXPECT_EQ(stats.cache.entries, 1u);
    EXPECT_EQ(stats.sessions_opened, static_cast<std::size_t>(tenants));
    // The registry view the benches export: one plan build total, every
    // tenant setup a reuse.
    auto& registry = obs::Registry::global();
    EXPECT_EQ(registry.counter_value("block_jacobi.plan_builds"), 1.0);
    EXPECT_EQ(registry.counter_value("block_jacobi.plan_reuses"),
              static_cast<double>(tenants));
    EXPECT_EQ(registry.counter_value("block_jacobi.setups"),
              static_cast<double>(tenants));
    // All sessions alias one symbolic object.
    const auto* bj0 = dynamic_cast<const precond::BlockJacobi<double>*>(
        &sessions[0]->preconditioner());
    const auto* bj1 = dynamic_cast<const precond::BlockJacobi<double>*>(
        &sessions[1]->preconditioner());
    ASSERT_NE(bj0, nullptr);
    ASSERT_NE(bj1, nullptr);
    EXPECT_EQ(bj0->symbolic().get(), bj1->symbolic().get());
}

TEST(PlanCache, DifferentPatternsStayIsolated) {
    Engine engine;
    auto s1 = engine.open_session(test_matrix(1), lu_session());
    auto s2 = engine.open_session(test_matrix(2), lu_session());
    const auto stats = engine.stats();
    EXPECT_EQ(stats.cache.builds, 2u);
    EXPECT_EQ(stats.cache.reuses, 0u);
    EXPECT_EQ(stats.cache.entries, 2u);
    const auto* bj1 = dynamic_cast<const precond::BlockJacobi<double>*>(
        &s1->preconditioner());
    const auto* bj2 = dynamic_cast<const precond::BlockJacobi<double>*>(
        &s2->preconditioner());
    EXPECT_NE(bj1->symbolic().get(), bj2->symbolic().get());
}

TEST(PlanCache, DifferentBlockBoundIsADifferentPlan) {
    Engine engine;
    const auto a = test_matrix();
    auto opts = lu_session();
    auto s1 = engine.open_session(a, opts);
    opts.precond.max_block_size = 6;
    auto s2 = engine.open_session(a, opts);
    EXPECT_EQ(engine.stats().cache.builds, 2u);
}

TEST(PlanCache, ScalarBackendsShareOneSymbolic) {
    // The scalar-path symbolic (lanes == 1) is backend-independent, so
    // "lu" and "gh" tenants over one pattern share a single plan.
    Engine engine;
    const auto a = test_matrix();
    auto s1 = engine.open_session(a, lu_session("lu"));
    auto s2 = engine.open_session(a, lu_session("gh"));
    const auto stats = engine.stats();
    EXPECT_EQ(stats.cache.builds, 1u);
    EXPECT_EQ(stats.cache.reuses, 1u);
}

TEST(PlanCache, NoSymbolicBackendBypassesTheCache) {
    Engine engine;
    SessionOptions opts;
    opts.precond.backend = "jacobi";
    auto s = engine.open_session(test_matrix(), opts);
    EXPECT_FALSE(s->plan_shared());
    EXPECT_EQ(engine.stats().cache.builds, 0u);
    EXPECT_EQ(engine.stats().cache.entries, 0u);
}

TEST(PlanCache, OptOutAnalyzesPrivately) {
    Engine engine;
    auto opts = lu_session();
    opts.share_symbolic = false;
    auto s1 = engine.open_session(test_matrix(), opts);
    auto s2 = engine.open_session(test_matrix(), opts);
    EXPECT_FALSE(s1->plan_shared());
    EXPECT_EQ(engine.stats().cache.builds, 0u);
}

TEST(PlanCache, LruEvictsUnpinnedEntriesUnderBudget) {
    // One shard, a budget that holds roughly two plans: opening sessions
    // over many distinct patterns and dropping them must keep resident
    // bytes bounded and count evictions.
    const auto probe = PlanCache::key_for(test_matrix(), lu_session().precond);
    PlanCacheOptions copts;
    copts.shards = 1;
    {
        // Measure one symbolic's footprint to size the budget.
        PlanCache probe_cache{PlanCacheOptions{.shards = 1}};
        const auto a = test_matrix(0);
        const auto sym = probe_cache.acquire(a, lu_session().precond);
        ASSERT_NE(sym, nullptr);
        copts.byte_budget = 2 * sym->byte_size() + sym->byte_size() / 2;
    }
    EngineOptions eopts;
    eopts.cache = copts;
    Engine engine(eopts);
    constexpr int patterns = 6;
    for (int p = 0; p < patterns; ++p) {
        auto s = engine.open_session(test_matrix(10 + p), lu_session());
        EXPECT_TRUE(s->plan_shared());
        // Session (and its pin on the symbolic) dies here.
    }
    const auto stats = engine.stats();
    EXPECT_EQ(stats.cache.builds, static_cast<std::size_t>(patterns));
    EXPECT_GT(stats.cache.evictions, 0u);
    EXPECT_LE(stats.cache.bytes, copts.byte_budget);
    EXPECT_LT(stats.cache.entries, static_cast<std::size_t>(patterns));
    (void)probe;
}

TEST(PlanCache, PinnedEntriesSurviveEviction) {
    PlanCacheOptions copts;
    copts.shards = 1;
    copts.byte_budget = 1;  // nothing fits: evict whatever is unpinned
    PlanCache cache(copts);
    const auto a = test_matrix();
    const auto pinned = cache.acquire(a, lu_session().precond);
    ASSERT_NE(pinned, nullptr);
    // Insert another pattern; the budget forces eviction, but the pinned
    // entry must stay resident while we hold it.
    const auto b = test_matrix(7);
    const auto other = cache.acquire(b, lu_session().precond);
    ASSERT_NE(other, nullptr);
    const auto again = cache.acquire(a, lu_session().precond);
    EXPECT_EQ(again.get(), pinned.get());  // still a cache hit
    EXPECT_GE(cache.stats().reuses, 1u);
}

// -- sessions: numeric path ------------------------------------------

TEST(Session, UpdateValuesMatchesFreshSetupBitwise) {
    Engine engine;
    const auto a = test_matrix();
    const auto v = perturbed_values(a, 9);

    auto session = engine.open_session(a, lu_session());
    session->update_values(v);

    auto fresh_matrix = a;
    fresh_matrix.set_values(v);
    auto fresh = engine.open_session(std::move(fresh_matrix), lu_session());

    std::vector<double> b(static_cast<std::size_t>(a.num_rows()), 1.0);
    std::vector<double> x1(b.size(), 0.0);
    std::vector<double> x2(b.size(), 0.0);
    const auto r1 = session->solve(b, x1);
    const auto r2 = fresh->solve(b, x2);
    EXPECT_EQ(r1.result.iterations, r2.result.iterations);
    EXPECT_EQ(0, std::memcmp(x1.data(), x2.data(),
                             x1.size() * sizeof(double)));
    EXPECT_GT(r1.refresh_seconds, 0.0);
}

TEST(Session, SolveConverges) {
    Engine engine;
    const auto a = test_matrix();
    auto session = engine.open_session(a, lu_session());
    std::vector<double> b(static_cast<std::size_t>(a.num_rows()), 1.0);
    std::vector<double> x(b.size(), 0.0);
    const auto response = session->solve(b, x);
    ASSERT_TRUE(response.result.converged());
    // Residual check against the session's own matrix.
    std::vector<double> r(b.size());
    session->matrix().spmv(x, r);
    double err = 0.0;
    for (std::size_t i = 0; i < r.size(); ++i) {
        err = std::max(err, std::abs(r[i] - b[i]));
    }
    EXPECT_LT(err, 1e-5);
}

TEST(Session, PerRequestSolverOverride) {
    Engine engine;
    auto session = engine.open_session(test_matrix(), lu_session());
    SolveRequest<double> req;
    req.rhs.assign(static_cast<std::size_t>(session->num_rows()), 1.0);
    req.solver = "bicgstab";
    req.rel_tol = 1e-4;
    auto future = session->submit(std::move(req));
    const auto response = future.get();
    ASSERT_TRUE(response.accepted);
    EXPECT_TRUE(response.result.converged());
}

// -- async engine: storms, drain, admission --------------------------

TEST(Engine, ConcurrentStormBitwiseEqualsSerial) {
    const auto a = test_matrix();
    constexpr int tenants = 6;
    constexpr int rounds = 3;

    const auto run = [&](bool concurrent) {
        Engine engine;
        std::vector<SessionPtr<double>> sessions;
        for (int t = 0; t < tenants; ++t) {
            auto m = a;
            m.set_values(perturbed_values(a, 50 + t));
            sessions.push_back(
                engine.open_session(std::move(m), lu_session()));
        }
        std::vector<std::vector<double>> xs;
        if (concurrent) {
            std::vector<std::future<SolveResponse<double>>> futures;
            std::vector<std::thread> clients;
            std::mutex order;
            futures.resize(static_cast<std::size_t>(tenants * rounds));
            for (int t = 0; t < tenants; ++t) {
                clients.emplace_back([&, t] {
                    for (int r = 0; r < rounds; ++r) {
                        SolveRequest<double> req;
                        req.rhs.assign(
                            static_cast<std::size_t>(
                                sessions[static_cast<std::size_t>(t)]
                                    ->num_rows()),
                            1.0 + r);
                        auto f = sessions[static_cast<std::size_t>(t)]
                                     ->submit(std::move(req));
                        std::lock_guard<std::mutex> lock(order);
                        futures[static_cast<std::size_t>(t * rounds + r)] =
                            std::move(f);
                    }
                });
            }
            for (auto& c : clients) {
                c.join();
            }
            for (auto& f : futures) {
                auto resp = f.get();
                EXPECT_TRUE(resp.accepted);
                xs.push_back(std::move(resp.x));
            }
        } else {
            for (int t = 0; t < tenants; ++t) {
                for (int r = 0; r < rounds; ++r) {
                    SolveRequest<double> req;
                    req.rhs.assign(
                        static_cast<std::size_t>(
                            sessions[static_cast<std::size_t>(t)]
                                ->num_rows()),
                        1.0 + r);
                    auto resp = sessions[static_cast<std::size_t>(t)]
                                    ->submit(std::move(req))
                                    .get();
                    EXPECT_TRUE(resp.accepted);
                    xs.push_back(std::move(resp.x));
                }
            }
        }
        engine.drain();
        return xs;
    };

    const auto serial = run(false);
    const auto storm = run(true);
    ASSERT_EQ(serial.size(), storm.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(serial[i].size(), storm[i].size());
        EXPECT_EQ(0, std::memcmp(serial[i].data(), storm[i].data(),
                                 serial[i].size() * sizeof(double)))
            << "request " << i << " diverged under concurrency";
    }
}

/// Occupy every pool worker until released, so queued service jobs
/// cannot start and admission control is observable deterministically.
class WorkerGate {
public:
    explicit WorkerGate(unsigned workers) : spawned_(workers) {
        for (unsigned w = 0; w < workers; ++w) {
            ThreadPool::global().submit([this] {
                std::unique_lock<std::mutex> lock(mutex_);
                ++held_;
                cv_.notify_all();
                cv_.wait(lock, [&] { return released_; });
                ++exited_;
                cv_.notify_all();
            });
        }
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return held_ == workers; });
    }
    /// Destruction must outwait the blockers: they still touch this
    /// object's mutex while waking up.
    ~WorkerGate() {
        release();
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return exited_ == spawned_; });
    }
    void release() {
        std::lock_guard<std::mutex> lock(mutex_);
        released_ = true;
        cv_.notify_all();
    }

private:
    std::mutex mutex_;
    std::condition_variable cv_;
    const unsigned spawned_;
    unsigned held_ = 0;
    unsigned exited_ = 0;
    bool released_ = false;
};

TEST(Engine, AdmissionRejectsWhenQueueFull) {
    const unsigned workers = ThreadPool::global().size() - 1;
    if (workers == 0) {
        GTEST_SKIP() << "no pool workers: submit() runs inline";
    }
    EngineOptions eopts;
    eopts.queue_capacity = 2;
    eopts.admission = Admission::reject;
    Engine engine(eopts);
    auto session = engine.open_session(test_matrix(), lu_session());
    const auto request = [&] {
        SolveRequest<double> req;
        req.rhs.assign(static_cast<std::size_t>(session->num_rows()), 1.0);
        return req;
    };
    std::vector<std::future<SolveResponse<double>>> futures;
    {
        WorkerGate gate(workers);
        for (int i = 0; i < 5; ++i) {
            futures.push_back(session->submit(request()));
        }
        const auto stats = engine.stats();
        EXPECT_EQ(stats.submitted, 2u);
        EXPECT_EQ(stats.rejected, 3u);
        EXPECT_GE(stats.peak_depth, 2u);
        // Rejected futures resolve immediately, accepted ones only after
        // the gate opens.
        EXPECT_FALSE(futures[2].get().accepted);
        gate.release();
    }
    engine.drain();
    EXPECT_TRUE(futures[0].get().accepted);
    EXPECT_TRUE(futures[1].get().accepted);
    EXPECT_FALSE(futures[3].get().accepted);
    EXPECT_FALSE(futures[4].get().accepted);
    const auto stats = engine.stats();
    EXPECT_EQ(stats.completed, 2u);
    EXPECT_EQ(stats.outstanding, 0u);
}

TEST(Engine, AdmissionBlocksUntilRoom) {
    const unsigned workers = ThreadPool::global().size() - 1;
    if (workers == 0) {
        GTEST_SKIP() << "no pool workers: submit() runs inline";
    }
    EngineOptions eopts;
    eopts.queue_capacity = 1;
    eopts.admission = Admission::block;
    Engine engine(eopts);
    auto session = engine.open_session(test_matrix(), lu_session());
    const auto request = [&] {
        SolveRequest<double> req;
        req.rhs.assign(static_cast<std::size_t>(session->num_rows()), 1.0);
        return req;
    };
    std::atomic<int> accepted{0};
    std::thread client;
    {
        WorkerGate gate(workers);
        auto first = session->submit(request());  // fills the queue
        client = std::thread([&] {
            for (int i = 0; i < 3; ++i) {
                auto f = session->submit(request());  // blocks while full
                if (f.get().accepted) {
                    accepted.fetch_add(1);
                }
            }
        });
        // The client must be parked in admission, not rejected.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        EXPECT_EQ(engine.stats().rejected, 0u);
        gate.release();
        EXPECT_TRUE(first.get().accepted);
    }
    client.join();
    engine.drain();
    EXPECT_EQ(accepted.load(), 3);
    const auto stats = engine.stats();
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_EQ(stats.completed, 4u);
}

TEST(Engine, DrainQuiesces) {
    Engine engine;
    auto session = engine.open_session(test_matrix(), lu_session());
    std::vector<std::future<SolveResponse<double>>> futures;
    for (int i = 0; i < 8; ++i) {
        SolveRequest<double> req;
        req.rhs.assign(static_cast<std::size_t>(session->num_rows()),
                       1.0 + i);
        futures.push_back(session->submit(std::move(req)));
    }
    engine.drain();
    EXPECT_EQ(engine.stats().outstanding, 0u);
    for (auto& f : futures) {
        EXPECT_TRUE(f.get().accepted);
    }
}

// -- bounded queue ----------------------------------------------------

TEST(BoundedQueue, FifoOrderAndCapacity) {
    BoundedQueue<int> q(3);
    EXPECT_TRUE(q.try_push(1));
    EXPECT_TRUE(q.try_push(2));
    EXPECT_TRUE(q.try_push(3));
    EXPECT_FALSE(q.try_push(4));
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_TRUE(q.try_push(4));
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_EQ(q.pop().value(), 3);
    EXPECT_EQ(q.pop().value(), 4);
    EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, CloseDrainsThenReportsEmpty) {
    BoundedQueue<int> q(2);
    EXPECT_TRUE(q.push(1));
    q.close();
    EXPECT_FALSE(q.push(2));
    EXPECT_FALSE(q.try_push(2));
    EXPECT_EQ(q.pop().value(), 1);  // queued items survive close
    EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, BlockedProducerWakesOnPop) {
    BoundedQueue<int> q(1);
    EXPECT_TRUE(q.push(1));
    std::thread producer([&] { EXPECT_TRUE(q.push(2)); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(q.pop().value(), 1);
    producer.join();
    EXPECT_EQ(q.pop().value(), 2);
}

// -- solver factory ---------------------------------------------------

TEST(SolverFactory, BuiltinsSolve) {
    const auto a = test_matrix();
    precond::Config pconf;
    pconf.backend = "lu";
    pconf.max_block_size = 12;
    const auto prec = precond::make_preconditioner<double>(a, pconf);
    std::vector<double> b(static_cast<std::size_t>(a.num_rows()), 1.0);
    for (const auto& method : solvers::registered_solvers()) {
        solvers::Config config;
        config.method = method;
        config.rel_tol = 1e-8;
        const auto solver = solvers::make_solver<double>(config);
        EXPECT_EQ(solver->name(), method);
        std::vector<double> x(b.size(), 0.0);
        const auto result = solver->solve(a, b, x, *prec);
        // CG assumes SPD and may stall on this nonsymmetric system; the
        // factory contract is method dispatch, not convergence.
        if (method != "cg") {
            EXPECT_TRUE(result.converged()) << method;
        }
    }
}

TEST(SolverFactory, MatchesDirectCall) {
    const auto a = test_matrix();
    precond::Config pconf;
    pconf.backend = "lu";
    const auto prec = precond::make_preconditioner<double>(a, pconf);
    std::vector<double> b(static_cast<std::size_t>(a.num_rows()), 1.0);

    solvers::Config config;
    config.method = "idr";
    config.idr_s = 2;
    std::vector<double> x1(b.size(), 0.0);
    const auto r1 = solvers::make_solver<double>(config)->solve(
        a, b, std::span<double>(x1), *prec);

    solvers::IdrOptions opts;
    opts.s = 2;
    std::vector<double> x2(b.size(), 0.0);
    const auto r2 = solvers::idr(a, std::span<const double>(b),
                                 std::span<double>(x2), *prec, opts);
    EXPECT_EQ(r1.iterations, r2.iterations);
    EXPECT_EQ(0, std::memcmp(x1.data(), x2.data(),
                             x1.size() * sizeof(double)));
}

TEST(SolverFactory, UnknownMethodThrowsWithCatalog) {
    solvers::Config config;
    config.method = "does-not-exist";
    try {
        (void)solvers::make_solver<double>(config);
        FAIL() << "expected BadParameter";
    } catch (const BadParameter& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("does-not-exist"), std::string::npos);
        EXPECT_NE(msg.find("idr"), std::string::npos);
    }
}

TEST(SolverFactory, RegistryListsBuiltins) {
    const auto names = solvers::registered_solvers();
    for (const char* required : {"cg", "bicgstab", "idr", "gmres"}) {
        EXPECT_TRUE(std::find(names.begin(), names.end(), required) !=
                    names.end())
            << required;
        EXPECT_TRUE(solvers::solver_registered(required));
    }
    EXPECT_FALSE(solvers::solver_registered("nope"));
}

TEST(SolverFactory, CustomRegistration) {
    solvers::register_solver<double>(
        "test-custom", [](const solvers::Config& config) {
            auto inner = config;
            inner.method = "bicgstab";
            return solvers::make_solver<double>(inner);
        });
    EXPECT_TRUE(solvers::solver_registered("test-custom"));
    solvers::Config config;
    config.method = "test-custom";
    const auto solver = solvers::make_solver<double>(config);
    EXPECT_EQ(solver->name(), "bicgstab");
    // float was not registered for this key.
    config.method = "test-custom";
    EXPECT_THROW((void)solvers::make_solver<float>(config), BadParameter);
}

// -- shared infrastructure races --------------------------------------

TEST(CsrPartition, PatternHashMemoizedAndStructural) {
    const auto a = test_matrix();
    const auto h = a.pattern_hash();
    // Matches a from-scratch computation and is stable across calls.
    EXPECT_EQ(h, blocking::csr_pattern_hash(a.row_ptrs(), a.col_idxs()));
    EXPECT_EQ(h, a.pattern_hash());

    // Copies share the structure cache; new values keep the pattern.
    auto b = a;
    EXPECT_EQ(b.pattern_hash(), h);
    b.set_values(std::span<const double>(perturbed_values(b, 7)));
    EXPECT_EQ(b.pattern_hash(), h);

    // A structural mutation must produce a different fingerprint.
    auto c = a;
    c.drop_small_entries(1e30);  // drops everything but the result is
                                 // still a valid (empty-pattern) matrix
    EXPECT_NE(c.pattern_hash(), h);
}

TEST(CsrPartition, ConcurrentPatternHashAgrees) {
    // The fingerprint shares the lazy call_once discipline of the spmv
    // partition; racing first computations must agree (TSan guards it).
    const auto a = test_matrix(5);
    constexpr int threads = 8;
    std::vector<std::uint64_t> hashes(threads);
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            hashes[static_cast<std::size_t>(t)] = a.pattern_hash();
        });
    }
    for (auto& w : workers) {
        w.join();
    }
    for (int t = 1; t < threads; ++t) {
        EXPECT_EQ(hashes[0], hashes[static_cast<std::size_t>(t)]);
    }
}

TEST(CsrPartition, ConcurrentLazyInitAgrees) {
    // Regression for the lazy spmv-partition initialization: many
    // threads race the first build on a shared matrix; all must observe
    // the same published boundaries (TSan guards the memory model).
    const auto a = test_matrix();
    constexpr int threads = 8;
    std::vector<std::span<const size_type>> views(threads);
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            views[static_cast<std::size_t>(t)] = a.spmv_partition();
        });
    }
    for (auto& w : workers) {
        w.join();
    }
    for (int t = 1; t < threads; ++t) {
        EXPECT_EQ(views[0].data(), views[static_cast<std::size_t>(t)].data());
    }
    ASSERT_GE(views[0].size(), 2u);
    EXPECT_EQ(views[0].front(), size_type{0});
    EXPECT_EQ(views[0].back(),
              static_cast<size_type>(a.num_rows()));
}

TEST(ThreadPoolSharing, ConcurrentExternalParallelLoops) {
    // Two client threads drive pool-parallel spmv on distinct matrices
    // at the same time -- the service's steady-state pattern. Results
    // must match a serial reference.
    const auto a = test_matrix(3);
    const auto b = test_matrix(4);
    const auto reference = [](const sparse::Csr<double>& m) {
        std::vector<double> x(static_cast<std::size_t>(m.num_rows()), 1.0);
        std::vector<double> y(x.size(), 0.0);
        m.spmv(x, y);
        return y;
    };
    const auto ra = reference(a);
    const auto rb = reference(b);
    std::atomic<bool> ok{true};
    constexpr int rounds = 50;
    std::thread ta([&] {
        for (int i = 0; i < rounds; ++i) {
            auto y = reference(a);
            if (y != ra) {
                ok.store(false);
            }
        }
    });
    std::thread tb([&] {
        for (int i = 0; i < rounds; ++i) {
            auto y = reference(b);
            if (y != rb) {
                ok.store(false);
            }
        }
    });
    ta.join();
    tb.join();
    EXPECT_TRUE(ok.load());
}

}  // namespace
}  // namespace vbatch::service

// One-core machines give the global pool zero workers; submit() then
// runs inline and the admission tests (which need queued jobs to be
// observable) would skip. Force a small pool before it is first built;
// an explicit VBATCH_THREADS from the environment still wins. Every
// assertion in this binary is pool-size-independent by design (async
// jobs inline their nested parallelism).
int main(int argc, char** argv) {
    ::setenv("VBATCH_THREADS", "4", /*overwrite=*/0);
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
