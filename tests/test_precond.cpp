// Tests for the preconditioner ecosystem.
#include "base/exception.hpp"
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/dense_matrix.hpp"
#include "blas/lapack.hpp"
#include "precond/block_jacobi.hpp"
#include "precond/preconditioner.hpp"
#include "precond/scalar_jacobi.hpp"
#include "sparse/generators.hpp"

namespace vbatch::precond {
namespace {

TEST(Identity, CopiesInput) {
    IdentityPreconditioner<double> prec;
    std::vector<double> r{1, 2, 3};
    std::vector<double> z(3);
    prec.apply(std::span<const double>(r), std::span<double>(z));
    EXPECT_EQ(z[1], 2.0);
    EXPECT_EQ(prec.name(), "identity");
}

TEST(ScalarJacobi, DividesByDiagonal) {
    const auto a = sparse::laplacian_2d<double>(4, 4, 1);
    ScalarJacobi<double> prec(a);
    std::vector<double> r(static_cast<std::size_t>(a.num_rows()), 1.0);
    std::vector<double> z(r.size());
    prec.apply(std::span<const double>(r), std::span<double>(z));
    for (index_type i = 0; i < a.num_rows(); ++i) {
        EXPECT_NEAR(z[static_cast<std::size_t>(i)] * a.at(i, i), 1.0,
                    1e-14);
    }
    EXPECT_EQ(prec.num_blocks(), a.num_rows());
}

TEST(ScalarJacobi, RejectsZeroDiagonal) {
    auto a = sparse::Csr<double>::from_triplets(2, 2,
                                                {{0, 0, 1.0}, {1, 0, 1.0}});
    EXPECT_THROW(ScalarJacobi<double>{a}, BadParameter);
}

class BlockJacobiBackends
    : public ::testing::TestWithParam<BlockJacobiBackend> {};

TEST_P(BlockJacobiBackends, ApplyEqualsDenseBlockSolve) {
    const auto backend = GetParam();
    const auto a = sparse::laplacian_2d<double>(6, 6, 4);
    BlockJacobiOptions opts;
    opts.backend = backend;
    opts.max_block_size = 16;
    BlockJacobi<double> prec(a, opts);

    const auto n = static_cast<std::size_t>(a.num_rows());
    std::vector<double> r(n);
    for (std::size_t i = 0; i < n; ++i) {
        r[i] = std::sin(0.1 * static_cast<double>(i)) + 0.5;
    }
    std::vector<double> z(n);
    prec.apply(std::span<const double>(r), std::span<double>(z));

    // Reference: dense solve of every diagonal block.
    const auto& layout = prec.layout();
    for (size_type b = 0; b < layout.count(); ++b) {
        const auto r0 = static_cast<index_type>(layout.row_offset(b));
        const index_type m = layout.size(b);
        DenseMatrix<double> block(m, m);
        for (index_type i = 0; i < m; ++i) {
            for (index_type j = 0; j < m; ++j) {
                block(i, j) = a.at(r0 + i, r0 + j);
            }
        }
        std::vector<double> ref(r.begin() + r0, r.begin() + r0 + m);
        ASSERT_EQ(lapack::gesv<double>(block.view(), std::span<double>(ref)),
                  0);
        for (index_type i = 0; i < m; ++i) {
            EXPECT_NEAR(z[static_cast<std::size_t>(r0 + i)],
                        ref[static_cast<std::size_t>(i)], 1e-9)
                << backend_name(backend) << " block " << b;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Backends, BlockJacobiBackends,
                         ::testing::Values(BlockJacobiBackend::lu,
                                           BlockJacobiBackend::lu_simd,
                                           BlockJacobiBackend::gauss_huard,
                                           BlockJacobiBackend::gauss_huard_t,
                                           BlockJacobiBackend::gje_inversion));

TEST(BlockJacobi, SimdBackendMatchesScalarLuBitwise) {
    const auto a = sparse::fem_block_matrix<double>(60, 4, 12, 2, 0.2, 29);
    const auto n = static_cast<std::size_t>(a.num_rows());
    std::vector<double> r(n);
    for (std::size_t i = 0; i < n; ++i) {
        r[i] = std::cos(0.3 * static_cast<double>(i));
    }
    BlockJacobiOptions lu_opts;
    lu_opts.backend = BlockJacobiBackend::lu;
    BlockJacobi<double> lu(a, lu_opts);
    std::vector<double> z_lu(n);
    lu.apply(std::span<const double>(r), std::span<double>(z_lu));

    for (const auto isa : core::available_simd_isas()) {
        BlockJacobiOptions simd_opts;
        simd_opts.backend = BlockJacobiBackend::lu_simd;
        simd_opts.simd = isa;
        BlockJacobi<double> simd(a, simd_opts);
        // Identical factors and pivots (implicit-pivoting LU is executed
        // with the same operation order lane-parallel)...
        ASSERT_EQ(simd.factors().count(), lu.factors().count());
        for (size_type b = 0; b < lu.factors().count(); ++b) {
            const auto va = lu.factors().view(b);
            const auto vb = simd.factors().view(b);
            for (index_type c = 0; c < va.cols(); ++c) {
                for (index_type rr = 0; rr < va.rows(); ++rr) {
                    ASSERT_EQ(va(rr, c), vb(rr, c))
                        << core::simd_isa_name(isa) << " block " << b;
                }
            }
            const auto pa = lu.pivots().span(b);
            const auto pb = simd.pivots().span(b);
            for (std::size_t k = 0; k < pa.size(); ++k) {
                ASSERT_EQ(pa[k], pb[k]);
            }
        }
        // ...and a bitwise-identical application.
        std::vector<double> z_simd(n);
        simd.apply(std::span<const double>(r), std::span<double>(z_simd));
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(z_lu[i], z_simd[i])
                << core::simd_isa_name(isa) << " row " << i;
        }
        EXPECT_LE(simd.num_simd_blocks(), simd.num_blocks());
        EXPECT_EQ(simd.name(), std::string("block-jacobi(lu-simd[") +
                                   core::simd_isa_name(isa) + "],32)");
    }
}

TEST(BlockJacobi, BackendsAgreeWithinRounding) {
    const auto a = sparse::fem_block_matrix<double>(40, 4, 12, 2, 0.2, 13);
    const auto n = static_cast<std::size_t>(a.num_rows());
    std::vector<double> r(n, 1.0);
    std::vector<double> z_lu(n), z_gh(n);
    BlockJacobiOptions lu_opts;
    lu_opts.backend = BlockJacobiBackend::lu;
    BlockJacobi<double> lu(a, lu_opts);
    lu.apply(std::span<const double>(r), std::span<double>(z_lu));
    BlockJacobiOptions gh_opts;
    gh_opts.backend = BlockJacobiBackend::gauss_huard;
    BlockJacobi<double> gh(a, gh_opts);
    gh.apply(std::span<const double>(r), std::span<double>(z_gh));
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(z_lu[i], z_gh[i],
                    1e-9 * std::max(1.0, std::abs(z_lu[i])));
    }
}

TEST(BlockJacobi, RespectsBlockSizeBound) {
    const auto a = sparse::laplacian_2d<double>(8, 8, 4);
    for (const index_type bound : {8, 12, 16, 24, 32}) {
        BlockJacobiOptions opts;
        opts.max_block_size = bound;
        BlockJacobi<double> prec(a, opts);
        for (size_type b = 0; b < prec.layout().count(); ++b) {
            EXPECT_LE(prec.layout().size(b), bound);
        }
        EXPECT_EQ(prec.layout().total_rows(), a.num_rows());
    }
}

TEST(BlockJacobi, AcceptsPrecomputedLayout) {
    const auto a = sparse::random_banded<double>(64, 2, 1.0, 3);
    BlockJacobiOptions opts;
    opts.layout = core::make_uniform_layout(8, 8);
    BlockJacobi<double> prec(a, opts);
    EXPECT_EQ(prec.num_blocks(), 8);
    EXPECT_EQ(prec.layout().size(0), 8);
}

TEST(BlockJacobi, SingularBlockThrowsUnderStrictPolicy) {
    // Block {2,3} is [[1,1],[1,1]]: rows identical inside the block,
    // exactly singular.
    const auto a = sparse::Csr<double>::from_triplets(
        4, 4,
        {{0, 0, 1.0}, {1, 1, 1.0}, {2, 2, 1.0}, {2, 3, 1.0}, {3, 2, 1.0},
         {3, 3, 1.0}});
    BlockJacobiOptions opts;
    opts.layout = core::make_layout({1, 1, 2});
    opts.recovery = RecoveryPolicy::strict();
    EXPECT_THROW((BlockJacobi<double>(a, opts)), SingularMatrix);
}

TEST(BlockJacobi, SingularBlockRecoversByDefault) {
    const auto a = sparse::Csr<double>::from_triplets(
        4, 4,
        {{0, 0, 1.0}, {1, 1, 1.0}, {2, 2, 1.0}, {2, 3, 1.0}, {3, 2, 1.0},
         {3, 3, 1.0}});
    BlockJacobiOptions opts;
    opts.layout = core::make_layout({1, 1, 2});
    const BlockJacobi<double> precond(a, opts);
    const auto summary = precond.recovery_summary();
    EXPECT_EQ(summary.total(), 3);
    EXPECT_EQ(summary.ok, 2);
    EXPECT_EQ(summary.boosted, 1);
    EXPECT_EQ(precond.block_status()[2], core::BlockStatus::boosted);
    // The boosted preconditioner must produce finite output.
    const std::vector<double> r{1.0, 2.0, 3.0, 4.0};
    std::vector<double> z(4, 0.0);
    precond.apply(r, z);
    for (const auto v : z) {
        EXPECT_TRUE(std::isfinite(v));
    }
}

TEST(BlockJacobi, NameAndSetupTime) {
    const auto a = sparse::laplacian_2d<double>(5, 5, 2);
    BlockJacobiOptions opts;
    opts.backend = BlockJacobiBackend::gauss_huard_t;
    opts.max_block_size = 12;
    BlockJacobi<double> prec(a, opts);
    EXPECT_EQ(prec.name(), "block-jacobi(gh-t,12)");
    EXPECT_GE(prec.setup_seconds(), 0.0);
}

TEST(BlockJacobi, TrsvVariantsGiveSameAnswer) {
    const auto a = sparse::laplacian_2d<double>(6, 6, 3);
    const auto n = static_cast<std::size_t>(a.num_rows());
    std::vector<double> r(n, 2.0), z1(n), z2(n);
    BlockJacobiOptions o1;
    o1.trsv_variant = core::TrsvVariant::eager;
    BlockJacobiOptions o2;
    o2.trsv_variant = core::TrsvVariant::lazy;
    BlockJacobi<double>(a, o1).apply(std::span<const double>(r),
                                     std::span<double>(z1));
    BlockJacobi<double>(a, o2).apply(std::span<const double>(r),
                                     std::span<double>(z2));
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(z1[i], z2[i], 1e-11);
    }
}

TEST(BlockJacobi, DiagnosticsReportConditioning) {
    const auto a = sparse::laplacian_2d<double>(8, 8, 4);
    BlockJacobiOptions opts;
    opts.max_block_size = 16;
    BlockJacobi<double> prec(a, opts);
    const auto d = prec.diagnostics(a);
    EXPECT_EQ(d.num_blocks, prec.num_blocks());
    EXPECT_GE(d.min_block_size, 1);
    EXPECT_LE(d.max_block_size, 16);
    EXPECT_GT(d.mean_block_size, 0.0);
    EXPECT_GE(d.min_condition, 1.0);
    EXPECT_GE(d.max_condition, d.min_condition);
    EXPECT_GE(d.geomean_condition, d.min_condition * 0.999);
    EXPECT_LE(d.geomean_condition, d.max_condition * 1.001);
    // The diagonal blocks of this well-posed stencil are benign.
    EXPECT_LT(d.max_condition, 1e4);
}

}  // namespace
}  // namespace vbatch::precond
