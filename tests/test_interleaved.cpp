// Tests for the interleaved (structure-of-arrays) batch storage and the
// vectorized GETRF/TRSV backend: pack/unpack round trips across all
// supported sizes, and bitwise/ULP equivalence of every available SIMD
// ISA against the scalar implicit-pivoting reference on random and
// adversarial (near-singular, permutation-heavy) batches.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <numeric>
#include <vector>

#include "core/getrf.hpp"
#include "core/interleaved.hpp"
#include "core/simd_dispatch.hpp"
#include "core/trsv.hpp"
#include "core/vectorized.hpp"

namespace vbatch::core {
namespace {

template <typename T>
std::uint64_t bit_pattern(T x) {
    if constexpr (sizeof(T) == 4) {
        std::uint32_t u;
        std::memcpy(&u, &x, sizeof(u));
        return u;
    } else {
        std::uint64_t u;
        std::memcpy(&u, &x, sizeof(u));
        return u;
    }
}

/// Distance in units-in-the-last-place between two finite values of the
/// same sign ordering (0 = bitwise identical up to -0/+0).
template <typename T>
std::uint64_t ulp_distance(T a, T b) {
    if (std::isnan(a) || std::isnan(b)) {
        return a == b || (std::isnan(a) && std::isnan(b))
                   ? 0
                   : std::numeric_limits<std::uint64_t>::max();
    }
    auto key = [](T x) -> std::int64_t {
        const auto u = static_cast<std::int64_t>(bit_pattern(x));
        // Map the sign-magnitude float encoding onto a monotonic range.
        return u < 0 ? std::numeric_limits<std::int64_t>::min() - u : u;
    };
    const auto ka = key(a);
    const auto kb = key(b);
    return static_cast<std::uint64_t>(ka > kb ? ka - kb : kb - ka);
}

std::vector<size_type> iota_indices(size_type n) {
    std::vector<size_type> idx(static_cast<std::size_t>(n));
    std::iota(idx.begin(), idx.end(), size_type{0});
    return idx;
}

/// Reversed identity: forces a different pivot row at every step.
template <typename T>
void make_permutation_heavy(MatrixView<T> v) {
    for (index_type j = 0; j < v.cols(); ++j) {
        for (index_type i = 0; i < v.rows(); ++i) {
            v(i, j) = (i == v.rows() - 1 - j) ? T{1} : T{0};
        }
    }
}

/// Random general block with one row scaled to the denormal edge: still
/// nonsingular, but every pivot decision is magnitude-critical.
template <typename T>
void make_near_singular(MatrixView<T> v, std::uint64_t seed) {
    auto eng = make_engine(seed, 0);
    for (index_type j = 0; j < v.cols(); ++j) {
        for (index_type i = 0; i < v.rows(); ++i) {
            v(i, j) = uniform<T>(eng, T{-1}, T{1});
        }
    }
    const index_type r = v.rows() / 2;
    for (index_type j = 0; j < v.cols(); ++j) {
        v(r, j) *= std::numeric_limits<T>::min();
    }
}

template <typename T>
void expect_batches_equal(const BatchedMatrices<T>& a,
                          const BatchedMatrices<T>& b,
                          std::uint64_t max_ulp, const char* label) {
    ASSERT_EQ(a.count(), b.count());
    for (size_type i = 0; i < a.count(); ++i) {
        const auto va = a.view(i);
        const auto vb = b.view(i);
        for (index_type c = 0; c < va.cols(); ++c) {
            for (index_type r = 0; r < va.rows(); ++r) {
                EXPECT_LE(ulp_distance(va(r, c), vb(r, c)), max_ulp)
                    << label << ": entry " << i << " (" << r << "," << c
                    << "): " << va(r, c) << " vs " << vb(r, c);
            }
        }
    }
}

void expect_pivots_equal(const BatchedPivots& a, const BatchedPivots& b) {
    ASSERT_EQ(a.count(), b.count());
    for (size_type i = 0; i < a.count(); ++i) {
        const auto sa = a.span(i);
        const auto sb = b.span(i);
        for (std::size_t k = 0; k < sa.size(); ++k) {
            EXPECT_EQ(sa[k], sb[k]) << "entry " << i << " pivot " << k;
        }
    }
}

class InterleavedIsas : public ::testing::TestWithParam<SimdIsa> {};

INSTANTIATE_TEST_SUITE_P(
    AvailableIsas, InterleavedIsas,
    ::testing::ValuesIn(available_simd_isas()),
    [](const ::testing::TestParamInfo<SimdIsa>& info) {
        return simd_isa_name(info.param);
    });

TEST_P(InterleavedIsas, PackUnpackRoundTripAllSizes) {
    // One group per size 1..32 with a count that exercises lane padding.
    for (index_type m = 1; m <= max_block_size; ++m) {
        const size_type count = 2 * simd_lanes<double>(GetParam()) + 1;
        auto batch = BatchedMatrices<double>::random_general(
            make_uniform_layout(count, m), 42 + m);
        const auto idx = iota_indices(count);
        InterleavedGroup<double> g(m, count, GetParam());
        g.pack_matrices(batch, idx);
        // Spot-check the layout contract: (r, c) of lane l contiguous.
        const auto v0 = batch.view(0);
        for (index_type c = 0; c < m; ++c) {
            for (index_type r = 0; r < m; ++r) {
                EXPECT_EQ(g.values()[g.value_index(r, c, 0)], v0(r, c));
            }
        }
        BatchedMatrices<double> round(batch.layout_ptr());
        g.unpack_matrices(round, idx);
        expect_batches_equal(batch, round, 0, "round-trip");
    }
}

TEST_P(InterleavedIsas, VectorsRoundTrip) {
    for (index_type m = 1; m <= max_block_size; m += 5) {
        const size_type count = simd_lanes<double>(GetParam()) + 2;
        const auto layout = make_uniform_layout(count, m);
        auto vecs = BatchedVectors<double>::random(layout, 7);
        const auto idx = iota_indices(count);
        InterleavedVectors<double> iv(m, count, GetParam());
        iv.pack(vecs, idx);
        BatchedVectors<double> round(layout);
        iv.unpack(round, idx);
        for (size_type i = 0; i < count; ++i) {
            const auto a = vecs.span(i);
            const auto b = round.span(i);
            for (std::size_t k = 0; k < a.size(); ++k) {
                EXPECT_EQ(a[k], b[k]);
            }
        }
    }
}

template <typename T>
void check_getrf_equivalence(SimdIsa isa, BatchedMatrices<T>&& batch,
                             const char* label) {
    auto reference = batch.clone();
    BatchedPivots ref_perm(batch.layout_ptr());
    GetrfOptions ref_opts;
    ref_opts.on_singular = SingularPolicy::report;
    ref_opts.parallel = false;
    const auto ref_status = getrf_batch(reference, ref_perm, ref_opts);

    BatchedPivots vec_perm(batch.layout_ptr());
    VectorizedOptions opts;
    opts.isa = isa;
    opts.on_singular = SingularPolicy::report;
    opts.parallel = false;
    const auto vec_status = getrf_batch_vectorized(batch, vec_perm, opts);

    EXPECT_EQ(ref_status.failures, vec_status.failures) << label;
    expect_batches_equal(reference, batch, 0, label);
    expect_pivots_equal(ref_perm, vec_perm);
}

TEST_P(InterleavedIsas, GetrfMatchesScalarOnRandomGeneral) {
    for (index_type m = 1; m <= max_block_size; ++m) {
        check_getrf_equivalence<double>(
            GetParam(),
            BatchedMatrices<double>::random_general(
                make_uniform_layout(9, m), 100 + m),
            "random general (double)");
        check_getrf_equivalence<float>(
            GetParam(),
            BatchedMatrices<float>::random_general(
                make_uniform_layout(17, m), 300 + m),
            "random general (float)");
    }
}

TEST_P(InterleavedIsas, GetrfMatchesScalarOnDiagonallyDominant) {
    for (const index_type m : {4, 8, 16, 24, 32}) {
        check_getrf_equivalence<double>(
            GetParam(),
            BatchedMatrices<double>::random_diagonally_dominant(
                make_uniform_layout(13, m), 500 + m),
            "diagonally dominant");
    }
}

TEST_P(InterleavedIsas, GetrfMatchesScalarOnAdversarialBatches) {
    for (const index_type m : {2, 5, 8, 16, 32}) {
        const size_type count = 8;
        auto batch = BatchedMatrices<double>(make_uniform_layout(count, m));
        for (size_type b = 0; b < count; ++b) {
            if (b % 2 == 0) {
                make_permutation_heavy(batch.view(b));
            } else {
                make_near_singular(batch.view(b),
                                   static_cast<std::uint64_t>(900 + b));
            }
        }
        check_getrf_equivalence<double>(GetParam(), std::move(batch),
                                        "adversarial");
    }
}

TEST_P(InterleavedIsas, GetrfMatchesScalarOnRaggedBatch) {
    std::vector<index_type> sizes = {3, 17, 8, 8, 1, 32, 8, 17, 2, 8,
                                     5, 8,  8, 8, 8, 29, 8, 8,  8, 4};
    auto batch = BatchedMatrices<double>::random_general(
        make_layout(std::move(sizes)), 7777);
    check_getrf_equivalence<double>(GetParam(), std::move(batch),
                                    "ragged batch");
}

TEST_P(InterleavedIsas, GetrsMatchesScalarReference) {
    for (const index_type m : {1, 4, 8, 16, 24, 32}) {
        const size_type count = 11;
        const auto layout = make_uniform_layout(count, m);
        auto factors = BatchedMatrices<double>::random_general(layout,
                                                               600 + m);
        BatchedPivots perm(layout);
        GetrfOptions fopts;
        fopts.parallel = false;
        getrf_batch(factors, perm, fopts);

        auto b_ref = BatchedVectors<double>::random(layout, 11);
        auto b_vec = b_ref.clone();
        TrsvOptions ref_opts;
        ref_opts.parallel = false;
        getrs_batch(factors, perm, b_ref, ref_opts);

        VectorizedOptions opts;
        opts.isa = GetParam();
        opts.parallel = false;
        getrs_batch_vectorized(factors, perm, b_vec, opts);

        for (size_type i = 0; i < count; ++i) {
            const auto ra = b_ref.span(i);
            const auto rb = b_vec.span(i);
            for (std::size_t k = 0; k < ra.size(); ++k) {
                EXPECT_LE(ulp_distance(ra[k], rb[k]), 0u)
                    << "m=" << m << " entry " << i << " row " << k;
            }
        }
    }
}

TEST_P(InterleavedIsas, SingularBlocksAreReportedAndFrozen) {
    const index_type m = 8;
    const size_type count = 7;
    auto batch = BatchedMatrices<double>::random_general(
        make_uniform_layout(count, m), 1234);
    // Zero out one full column of two entries: exact breakdown mid-way.
    for (const size_type bad : {size_type{2}, size_type{5}}) {
        auto v = batch.view(bad);
        for (index_type i = 0; i < m; ++i) {
            v(i, 3) = 0.0;
        }
    }
    auto reference = batch.clone();
    BatchedPivots ref_perm(batch.layout_ptr());
    GetrfOptions ref_opts;
    ref_opts.on_singular = SingularPolicy::report;
    ref_opts.parallel = false;
    const auto ref_status = getrf_batch(reference, ref_perm, ref_opts);
    ASSERT_EQ(ref_status.failures, 2);

    BatchedPivots vec_perm(batch.layout_ptr());
    VectorizedOptions opts;
    opts.isa = GetParam();
    opts.on_singular = SingularPolicy::report;
    opts.parallel = false;
    const auto vec_status = getrf_batch_vectorized(batch, vec_perm, opts);
    EXPECT_EQ(vec_status.failures, 2);
    EXPECT_EQ(vec_status.first_failure, 2);

    // Failed lanes freeze exactly where the scalar kernel returned, and
    // their completed permutation matches too.
    expect_batches_equal(reference, batch, 0, "singular freeze");
    expect_pivots_equal(ref_perm, vec_perm);

    // Throwing policy surfaces the first failure.
    auto again = reference.clone();
    BatchedPivots perm2(again.layout_ptr());
    VectorizedOptions throwing = opts;
    throwing.on_singular = SingularPolicy::throw_on_breakdown;
    EXPECT_THROW(getrf_batch_vectorized(again, perm2, throwing),
                 SingularMatrix);
}

TEST_P(InterleavedIsas, GroupLevelRoundTripSolvesLinearSystem) {
    const index_type m = 16;
    const size_type count = 2 * simd_lanes<double>(GetParam()) + 3;
    const auto layout = make_uniform_layout(count, m);
    auto batch = BatchedMatrices<double>::random_diagonally_dominant(
        layout, 77);
    const auto original = batch.clone();
    const auto idx = iota_indices(count);

    InterleavedGroup<double> g(m, count, GetParam());
    g.pack_matrices(batch, idx);
    VectorizedOptions opts;
    opts.isa = GetParam();
    opts.parallel = false;
    const auto status = getrf_interleaved(g, opts);
    EXPECT_TRUE(status.ok());

    auto x = BatchedVectors<double>::ones(layout);
    InterleavedVectors<double> rhs(m, count, GetParam());
    rhs.pack(x, idx);
    getrs_interleaved(g, rhs, opts);
    rhs.unpack(x, idx);

    // Check A x = 1 by residual.
    for (size_type b = 0; b < count; ++b) {
        const auto v = original.view(b);
        const auto xb = x.span(b);
        for (index_type i = 0; i < m; ++i) {
            double acc = 0;
            for (index_type j = 0; j < m; ++j) {
                acc += v(i, j) * xb[static_cast<std::size_t>(j)];
            }
            EXPECT_NEAR(acc, 1.0, 1e-10) << "entry " << b << " row " << i;
        }
    }
}

TEST(InterleavedDispatch, DetectionIsAvailableAndNamed) {
    const auto isa = detect_simd_isa();
    EXPECT_TRUE(simd_isa_available(isa));
    EXPECT_STRNE(simd_isa_name(isa), "unknown");
    const auto isas = available_simd_isas();
    ASSERT_FALSE(isas.empty());
    EXPECT_EQ(isas.front(), SimdIsa::scalar);
    EXPECT_EQ(simd_lanes<double>(SimdIsa::avx512), 8);
    EXPECT_EQ(simd_lanes<float>(SimdIsa::avx512), 16);
    EXPECT_EQ(simd_lanes<double>(SimdIsa::avx2), 4);
    EXPECT_EQ(simd_lanes<float>(SimdIsa::avx2), 8);
    EXPECT_EQ(simd_lanes<double>(SimdIsa::sse2), 2);
    EXPECT_EQ(simd_lanes<float>(SimdIsa::sse2), 4);
    EXPECT_EQ(simd_lanes<double>(SimdIsa::neon), 2);
    EXPECT_EQ(simd_lanes<float>(SimdIsa::neon), 4);
    EXPECT_EQ(simd_lanes<double>(SimdIsa::scalar), 1);
}

}  // namespace
}  // namespace vbatch::core
