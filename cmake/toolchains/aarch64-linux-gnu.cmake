# Cross-compilation toolchain for the CI aarch64 job: build with the
# Debian/Ubuntu aarch64-linux-gnu cross compiler and run test binaries
# under qemu-user (ctest prefixes the emulator automatically through
# CMAKE_CROSSCOMPILING_EMULATOR, including gtest test discovery).
#
#   cmake -B build-aarch64 -S . \
#     -DCMAKE_TOOLCHAIN_FILE=cmake/toolchains/aarch64-linux-gnu.cmake
set(CMAKE_SYSTEM_NAME Linux)
set(CMAKE_SYSTEM_PROCESSOR aarch64)

set(CMAKE_C_COMPILER aarch64-linux-gnu-gcc)
set(CMAKE_CXX_COMPILER aarch64-linux-gnu-g++)

# -L: qemu's ELF-interpreter / shared-library prefix for the target libc.
set(CMAKE_CROSSCOMPILING_EMULATOR "qemu-aarch64;-L;/usr/aarch64-linux-gnu")

set(CMAKE_FIND_ROOT_PATH /usr/aarch64-linux-gnu)
set(CMAKE_FIND_ROOT_PATH_MODE_PROGRAM NEVER)
set(CMAKE_FIND_ROOT_PATH_MODE_LIBRARY ONLY)
set(CMAKE_FIND_ROOT_PATH_MODE_INCLUDE ONLY)
# Host-built packages (e.g. the cross-compiled googletest the CI job
# installs into its own prefix) are located via CMAKE_PREFIX_PATH.
set(CMAKE_FIND_ROOT_PATH_MODE_PACKAGE BOTH)
