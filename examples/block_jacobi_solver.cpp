// End-to-end example: solve a sparse linear system from a multi-physics
// style discretization with IDR(4), comparing no preconditioner, scalar
// Jacobi, and the paper's block-Jacobi with every factorization backend.
//
//   $ ./examples/block_jacobi_solver [nx] [dofs] [peclet]
//
// Defaults reproduce a medium nonsymmetric convection-diffusion problem
// with 4 coupled unknowns per grid node, the sweet spot of supervariable
// blocking.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "precond/config.hpp"
#include "solvers/idr.hpp"
#include "sparse/generators.hpp"

namespace vb = vbatch;

namespace {

void report(const char* name, const vb::solvers::SolveResult& result,
            double setup_seconds) {
    if (result.converged()) {
        std::printf(
            "%-26s %6d iterations   setup %7.2f ms   solve %8.2f ms   "
            "total %8.2f ms\n",
            name, result.iterations, setup_seconds * 1e3,
            result.solve_seconds * 1e3,
            (setup_seconds + result.solve_seconds) * 1e3);
    } else {
        std::printf("%-26s did not converge in %d iterations%s\n", name,
                    result.iterations,
                    result.breakdown() ? " (breakdown)" : "");
    }
}

vb::solvers::SolveResult solve_with(
    const vb::sparse::Csr<double>& a,
    const vb::precond::Preconditioner<double>& prec) {
    std::vector<double> b(static_cast<std::size_t>(a.num_rows()), 1.0);
    std::vector<double> x(b.size(), 0.0);
    vb::solvers::IdrOptions opts;
    opts.s = 4;
    return vb::solvers::idr(a, std::span<const double>(b),
                            std::span<double>(x), prec, opts);
}

}  // namespace

int main(int argc, char** argv) {
    const vb::index_type nx = argc > 1 ? std::atoi(argv[1]) : 48;
    const vb::index_type dofs = argc > 2 ? std::atoi(argv[2]) : 4;
    const double peclet = argc > 3 ? std::atof(argv[3]) : 20.0;

    const auto a = vb::sparse::convection_diffusion_2d<double>(
        nx, nx, dofs, peclet, /*seed=*/1);
    std::printf(
        "convection-diffusion: %d x %d grid, %d dofs/node, peclet %.1f -> "
        "n = %d, nnz = %lld\n\n",
        nx, nx, dofs, peclet, a.num_rows(),
        static_cast<long long>(a.nnz()));

    {
        const auto prec = vb::precond::make_preconditioner<double>(
            a, {.backend = "none"});
        report("unpreconditioned", solve_with(a, *prec), 0.0);
    }
    {
        const auto prec = vb::precond::make_preconditioner<double>(
            a, {.backend = "jacobi"});
        report("scalar Jacobi", solve_with(a, *prec),
               prec->setup_seconds());
    }
    for (const auto* backend : {"lu", "gh", "gh-t", "gje-inv"}) {
        vb::precond::Config config;
        config.backend = backend;
        config.max_block_size = 32;
        const auto prec = vb::precond::make_preconditioner<double>(a,
                                                                   config);
        const auto name = prec->name();
        report(name.c_str(), solve_with(a, *prec), prec->setup_seconds());
    }

    std::printf(
        "\nThe block-Jacobi variants should need far fewer iterations than "
        "scalar Jacobi: supervariable blocking recovers the %d-dof node "
        "blocks and the batched factorizations absorb the intra-node "
        "coupling.\n",
        dofs);
    return 0;
}
