// Quickstart: factorize a variable-size batch of small matrices with the
// small-size LU (implicit pivoting) and solve one right-hand side per
// problem with the batched triangular solves.
//
//   $ ./examples/quickstart
//
// This is the 30-line tour of the library's core API: BatchLayout ->
// BatchedMatrices/Vectors -> getrf_batch -> getrs_batch.
#include <cstdio>
#include <vector>

#include "blas/blas2.hpp"
#include "core/getrf.hpp"
#include "core/trsv.hpp"

namespace vb = vbatch;

int main() {
    // A batch of 1000 independent problems with sizes cycling 4..32 --
    // exactly the variable-size situation block-Jacobi produces and the
    // vendor batched kernels cannot handle.
    std::vector<vb::index_type> sizes;
    for (int i = 0; i < 1000; ++i) {
        sizes.push_back(4 + (i * 7) % 29);
    }
    const auto layout = vb::core::make_layout(std::move(sizes));
    std::printf("batch: %lld problems, sizes %d..%d, %lld matrix values\n",
                static_cast<long long>(layout->count()), 4, 32,
                static_cast<long long>(layout->total_values()));

    // Random well-conditioned blocks and a known solution per problem.
    auto a = vb::core::BatchedMatrices<double>::random_diagonally_dominant(
        layout, /*seed=*/42);
    const auto a_original = a.clone();
    const auto x_reference =
        vb::core::BatchedVectors<double>::random(layout, 7);
    vb::core::BatchedVectors<double> b(layout);
    for (vb::size_type i = 0; i < layout->count(); ++i) {
        vb::blas::gemv(1.0, a_original.view(i),
                       std::span<const double>(x_reference.span(i)), 0.0,
                       b.span(i));
    }

    // Factorize everything: one call, implicit partial pivoting, the
    // permutation is fused into the factor writeback.
    vb::core::BatchedPivots pivots(layout);
    const auto status = vb::core::getrf_batch(a, pivots);
    std::printf("factorized: %s\n", status.ok() ? "all blocks ok" : "?!");

    // Solve: permute b through the pivots, then the two triangular solves.
    vb::core::getrs_batch(a, pivots, b);

    // Verify.
    double max_err = 0.0;
    for (vb::size_type i = 0; i < layout->count(); ++i) {
        const auto xs = b.span(i);
        const auto rs = x_reference.span(i);
        for (std::size_t k = 0; k < xs.size(); ++k) {
            max_err = std::max(max_err, std::abs(xs[k] - rs[k]));
        }
    }
    std::printf("max |x - x_ref| over the whole batch: %.3e\n", max_err);
    std::printf(max_err < 1e-8 ? "OK\n" : "FAILED\n");
    return max_err < 1e-8 ? 0 : 1;
}
