// Command-line solver: the "downstream user" entry point.
//
//   vbatch_solve [options]
//     --matrix <file.mtx>     Matrix Market input (default: a built-in
//                             convection-diffusion test problem)
//     --suite <case-name>     use a case from the 48-matrix suite instead
//     --solver idr|bicgstab|gmres|cg          (default idr)
//     --precond none|jacobi|lu|lu-simd|gh|gh-t|gje|cholesky  (default lu)
//     --block-size <1..32>    supervariable bound     (default 32)
//     --rcm                   reverse Cuthill-McKee pre-ordering
//     --tol <rel. residual>   stopping tolerance      (default 1e-6)
//     --max-iters <n>         iteration budget        (default 10000)
//     --idr-s <s>             IDR shadow dimension    (default 4)
//
// Prints a MAGMA-sparse-style convergence report.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "blocking/rcm.hpp"
#include "precond/block_jacobi.hpp"
#include "precond/scalar_jacobi.hpp"
#include "solvers/bicgstab.hpp"
#include "solvers/cg.hpp"
#include "solvers/gmres.hpp"
#include "solvers/idr.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/suite.hpp"

namespace vb = vbatch;

namespace {

struct Options {
    std::string matrix_file;
    std::string suite_case;
    std::string solver = "idr";
    std::string precond = "lu";
    vb::index_type block_size = 32;
    bool rcm = false;
    double tol = 1e-6;
    vb::index_type max_iters = 10000;
    vb::index_type idr_s = 4;
};

[[noreturn]] void usage(const char* argv0) {
    std::printf(
        "usage: %s [--matrix f.mtx | --suite case] [--solver "
        "idr|bicgstab|gmres|cg] [--precond "
        "none|jacobi|lu|lu-simd|gh|gh-t|gje|cholesky] [--block-size n] [--rcm] "
        "[--tol t] [--max-iters n] [--idr-s s]\n",
        argv0);
    std::exit(2);
}

Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                usage(argv[0]);
            }
            return argv[++i];
        };
        if (arg == "--matrix") {
            o.matrix_file = next();
        } else if (arg == "--suite") {
            o.suite_case = next();
        } else if (arg == "--solver") {
            o.solver = next();
        } else if (arg == "--precond") {
            o.precond = next();
        } else if (arg == "--block-size") {
            o.block_size = std::atoi(next());
        } else if (arg == "--rcm") {
            o.rcm = true;
        } else if (arg == "--tol") {
            o.tol = std::atof(next());
        } else if (arg == "--max-iters") {
            o.max_iters = std::atoi(next());
        } else if (arg == "--idr-s") {
            o.idr_s = std::atoi(next());
        } else {
            usage(argv[0]);
        }
    }
    return o;
}

}  // namespace

int main(int argc, char** argv) {
    const auto opts = parse(argc, argv);
    try {
        // --- load / build the matrix ---
        vb::sparse::Csr<double> a = [&] {
            if (!opts.matrix_file.empty()) {
                std::printf("reading %s\n", opts.matrix_file.c_str());
                return vb::sparse::read_matrix_market_file<double>(
                    opts.matrix_file);
            }
            if (!opts.suite_case.empty()) {
                return vb::sparse::build_suite_matrix(
                    vb::sparse::suite_case_by_name(opts.suite_case));
            }
            return vb::sparse::convection_diffusion_2d<double>(64, 64, 4,
                                                               20.0, 1);
        }();
        std::printf("matrix: n = %d, nnz = %lld\n", a.num_rows(),
                    static_cast<long long>(a.nnz()));

        std::vector<vb::index_type> perm;
        if (opts.rcm) {
            perm = vb::blocking::reverse_cuthill_mckee(a);
            const auto before = vb::blocking::bandwidth(a);
            a = vb::blocking::permute_symmetric(
                a, std::span<const vb::index_type>(perm));
            std::printf("RCM: bandwidth %d -> %d\n", before,
                        vb::blocking::bandwidth(a));
        }

        // --- preconditioner ---
        std::unique_ptr<vb::precond::Preconditioner<double>> prec;
        if (opts.precond == "none") {
            prec = std::make_unique<
                vb::precond::IdentityPreconditioner<double>>();
        } else if (opts.precond == "jacobi") {
            prec = std::make_unique<vb::precond::ScalarJacobi<double>>(a);
        } else {
            vb::precond::BlockJacobiOptions bj;
            bj.max_block_size = opts.block_size;
            if (opts.precond == "lu") {
                bj.backend = vb::precond::BlockJacobiBackend::lu;
            } else if (opts.precond == "lu-simd") {
                bj.backend = vb::precond::BlockJacobiBackend::lu_simd;
            } else if (opts.precond == "gh") {
                bj.backend = vb::precond::BlockJacobiBackend::gauss_huard;
            } else if (opts.precond == "gh-t") {
                bj.backend = vb::precond::BlockJacobiBackend::gauss_huard_t;
            } else if (opts.precond == "gje") {
                bj.backend = vb::precond::BlockJacobiBackend::gje_inversion;
            } else if (opts.precond == "cholesky") {
                bj.backend = vb::precond::BlockJacobiBackend::cholesky;
            } else {
                usage(argv[0]);
            }
            prec = std::make_unique<vb::precond::BlockJacobi<double>>(a, bj);
        }
        std::printf("preconditioner: %s (setup %.3f ms, %lld blocks)\n",
                    prec->name().c_str(), prec->setup_seconds() * 1e3,
                    static_cast<long long>(prec->num_blocks()));

        // --- solve ---
        std::vector<double> b(static_cast<std::size_t>(a.num_rows()), 1.0);
        std::vector<double> x(b.size(), 0.0);
        vb::solvers::SolveResult result;
        if (opts.solver == "idr") {
            vb::solvers::IdrOptions so;
            so.rel_tol = opts.tol;
            so.max_iters = opts.max_iters;
            so.s = opts.idr_s;
            result = vb::solvers::idr(a, std::span<const double>(b),
                                      std::span<double>(x), *prec, so);
        } else if (opts.solver == "bicgstab") {
            vb::solvers::SolverOptions so;
            so.rel_tol = opts.tol;
            so.max_iters = opts.max_iters;
            result = vb::solvers::bicgstab(a, std::span<const double>(b),
                                           std::span<double>(x), *prec, so);
        } else if (opts.solver == "gmres") {
            vb::solvers::GmresOptions so;
            so.rel_tol = opts.tol;
            so.max_iters = opts.max_iters;
            result = vb::solvers::gmres(a, std::span<const double>(b),
                                        std::span<double>(x), *prec, so);
        } else if (opts.solver == "cg") {
            vb::solvers::SolverOptions so;
            so.rel_tol = opts.tol;
            so.max_iters = opts.max_iters;
            result = vb::solvers::cg(a, std::span<const double>(b),
                                     std::span<double>(x), *prec, so);
        } else {
            usage(argv[0]);
        }

        std::printf("%s: %s after %d iterations, ||r||/||r0|| = %.3e, "
                    "solve %.3f ms, total %.3f ms\n",
                    opts.solver.c_str(),
                    result.converged ? "converged" : "NOT converged",
                    result.iterations, result.relative_residual(),
                    result.solve_seconds * 1e3,
                    (result.solve_seconds + prec->setup_seconds()) * 1e3);
        return result.converged ? 0 : 1;
    } catch (const vb::Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
