// Command-line solver: the "downstream user" entry point.
//
//   vbatch_solve [options]
//     --matrix <file.mtx>     Matrix Market input (default: a built-in
//                             convection-diffusion test problem)
//     --suite <case-name>     use a case from the 48-matrix suite instead
//     --solver idr|bicgstab|gmres|cg          (default idr)
//     --precond <backend>     any registered preconditioner backend
//                             (none|jacobi|lu|lu-simd|gh|gh-t|gje|
//                              gje-inv|cholesky)        (default lu)
//     --block-size <1..32>    supervariable bound       (default 32)
//     --rcm                   reverse Cuthill-McKee pre-ordering
//     --recovery strict|boost|full   breakdown policy   (default full)
//     --pivot implicit|rbt    pivoting scheme of the lu/lu-simd backends
//                             (rbt = butterfly-transformed pivot-free
//                             fast path)                 (default implicit)
//     --inject-singular <n>   zero n diagonal blocks before the setup
//                             (exercises the recovery pipeline)
//     --inject-illcond <n>    grade n diagonal blocks near-singular (but
//                             nonsingular; exercises the RBT degeneracy
//                             monitor + pivoted fallback)
//     --tol <rel. residual>   stopping tolerance        (default 1e-6)
//     --max-iters <n>         iteration budget          (default 10000)
//     --idr-s <s>             IDR shadow dimension      (default 4)
//
// Prints a MAGMA-sparse-style convergence report plus the per-block
// recovery summary, and emits BENCH_vbatch_solve.json when
// VBATCH_BENCH_JSON is set.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "blocking/extraction.hpp"
#include "blocking/rcm.hpp"
#include "blocking/supervariable.hpp"
#include "obs/bench_report.hpp"
#include "precond/config.hpp"
#include "solvers/config.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/suite.hpp"

namespace vb = vbatch;

namespace {

struct Options {
    std::string matrix_file;
    std::string suite_case;
    std::string solver = "idr";
    std::string precond = "lu";
    std::string recovery = "full";
    vb::index_type block_size = 32;
    bool rcm = false;
    std::string pivot = "implicit";
    vb::size_type inject_singular = 0;
    vb::size_type inject_illcond = 0;
    double tol = 1e-6;
    vb::index_type max_iters = 10000;
    vb::index_type idr_s = 4;
};

[[noreturn]] void usage(const char* argv0) {
    const auto join = [](const std::vector<std::string>& names) {
        std::string out;
        for (const auto& name : names) {
            if (!out.empty()) {
                out += "|";
            }
            out += name;
        }
        return out;
    };
    const std::string solvers = join(vb::solvers::registered_solvers());
    const std::string backends = join(vb::precond::registered_backends());
    std::printf(
        "usage: %s [--matrix f.mtx | --suite case] [--solver %s] "
        "[--precond %s] [--block-size n] [--rcm] "
        "[--recovery strict|boost|full] [--pivot implicit|rbt] "
        "[--inject-singular n] [--inject-illcond n] [--tol t] "
        "[--max-iters n] [--idr-s s]\n",
        argv0, solvers.c_str(), backends.c_str());
    std::exit(2);
}

Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                usage(argv[0]);
            }
            return argv[++i];
        };
        if (arg == "--matrix") {
            o.matrix_file = next();
        } else if (arg == "--suite") {
            o.suite_case = next();
        } else if (arg == "--solver") {
            o.solver = next();
        } else if (arg == "--precond") {
            o.precond = next();
        } else if (arg == "--block-size") {
            o.block_size = std::atoi(next());
        } else if (arg == "--rcm") {
            o.rcm = true;
        } else if (arg == "--recovery") {
            o.recovery = next();
        } else if (arg == "--pivot") {
            o.pivot = next();
        } else if (arg == "--inject-singular") {
            o.inject_singular =
                static_cast<vb::size_type>(std::atoi(next()));
        } else if (arg == "--inject-illcond") {
            o.inject_illcond =
                static_cast<vb::size_type>(std::atoi(next()));
        } else if (arg == "--tol") {
            o.tol = std::atof(next());
        } else if (arg == "--max-iters") {
            o.max_iters = std::atoi(next());
        } else if (arg == "--idr-s") {
            o.idr_s = std::atoi(next());
        } else {
            usage(argv[0]);
        }
    }
    return o;
}

vb::precond::RecoveryPolicy recovery_policy(const Options& opts,
                                            const char* argv0) {
    if (opts.recovery == "strict") {
        return vb::precond::RecoveryPolicy::strict();
    }
    if (opts.recovery == "boost") {
        return vb::precond::RecoveryPolicy::boost_only();
    }
    if (opts.recovery == "full") {
        return {};
    }
    usage(argv0);
}

}  // namespace

int main(int argc, char** argv) {
    const auto opts = parse(argc, argv);
    if (!vb::precond::backend_registered(opts.precond) ||
        !vb::solvers::solver_registered(opts.solver)) {
        usage(argv[0]);
    }
    try {
        // --- load / build the matrix ---
        vb::sparse::Csr<double> a = [&] {
            if (!opts.matrix_file.empty()) {
                std::printf("reading %s\n", opts.matrix_file.c_str());
                return vb::sparse::read_matrix_market_file<double>(
                    opts.matrix_file);
            }
            if (!opts.suite_case.empty()) {
                return vb::sparse::build_suite_matrix(
                    vb::sparse::suite_case_by_name(opts.suite_case));
            }
            return vb::sparse::convection_diffusion_2d<double>(64, 64, 4,
                                                               20.0, 1);
        }();
        std::printf("matrix: n = %d, nnz = %lld\n", a.num_rows(),
                    static_cast<long long>(a.nnz()));

        std::vector<vb::index_type> perm;
        if (opts.rcm) {
            perm = vb::blocking::reverse_cuthill_mckee(a);
            const auto before = vb::blocking::bandwidth(a);
            a = vb::blocking::permute_symmetric(
                a, std::span<const vb::index_type>(perm));
            std::printf("RCM: bandwidth %d -> %d\n", before,
                        vb::blocking::bandwidth(a));
        }

        // --- preconditioner ---
        vb::precond::Config config;
        config.backend = opts.precond;
        config.max_block_size = opts.block_size;
        config.recovery = recovery_policy(opts, argv[0]);
        if (opts.pivot == "rbt") {
            config.pivot = vb::precond::PivotScheme::rbt;
        } else if (opts.pivot != "implicit") {
            usage(argv[0]);
        }

        vb::size_type injected = 0;
        vb::size_type injected_ill = 0;
        if (opts.inject_singular > 0 || opts.inject_illcond > 0) {
            // Perturb the in-block values of evenly spaced diagonal
            // blocks; the pattern (and with it the supervariable layout)
            // is unchanged, so the setup sees genuinely singular /
            // graded near-singular blocks.
            config.layout = vb::blocking::supervariable_layout(
                a, vb::blocking::BlockingOptions{
                       .max_block_size = opts.block_size});
            if (opts.inject_singular > 0) {
                injected = vb::blocking::make_blocks_singular(
                    a, *config.layout, opts.inject_singular);
                std::printf("injected %lld singular diagonal blocks\n",
                            static_cast<long long>(injected));
            }
            if (opts.inject_illcond > 0) {
                injected_ill = vb::blocking::make_blocks_illcond(
                    a, *config.layout, opts.inject_illcond);
                std::printf(
                    "injected %lld ill-conditioned diagonal blocks\n",
                    static_cast<long long>(injected_ill));
            }
        }

        const auto prec =
            vb::precond::make_preconditioner<double>(a, config);
        std::printf("preconditioner: %s (setup %.3f ms, %lld blocks)\n",
                    prec->name().c_str(), prec->setup_seconds() * 1e3,
                    static_cast<long long>(prec->num_blocks()));
        const auto recovery = prec->recovery_summary();
        if (recovery.total() > 0) {
            std::printf(
                "recovery: %lld ok, %lld boosted, %lld fell back, "
                "%lld singular (max pivot growth %.3g)\n",
                static_cast<long long>(recovery.ok),
                static_cast<long long>(recovery.boosted),
                static_cast<long long>(recovery.fell_back),
                static_cast<long long>(recovery.singular),
                recovery.max_growth);
        }

        // --- solve ---
        std::vector<double> b(static_cast<std::size_t>(a.num_rows()), 1.0);
        std::vector<double> x(b.size(), 0.0);
        vb::solvers::Config solver_config;
        solver_config.method = opts.solver;
        solver_config.rel_tol = opts.tol;
        solver_config.max_iters = opts.max_iters;
        solver_config.idr_s = opts.idr_s;
        const auto solver =
            vb::solvers::make_solver<double>(solver_config);
        const auto result = solver->solve(a, std::span<const double>(b),
                                          std::span<double>(x), *prec);

        std::printf("%s: %s after %d iterations, ||r||/||r0|| = %.3e, "
                    "solve %.3f ms, total %.3f ms\n",
                    opts.solver.c_str(), to_string(result.status),
                    result.iterations, result.relative_residual(),
                    result.solve_seconds * 1e3,
                    (result.solve_seconds + prec->setup_seconds()) * 1e3);

        vb::obs::BenchReport report("vbatch_solve");
        report.config("solver", opts.solver);
        report.config("precond", opts.precond);
        report.config("recovery", opts.recovery);
        report.config("pivot", opts.pivot);
        report.config("n", a.num_rows());
        report.config("block_size", opts.block_size);
        report.config("injected_singular", injected);
        report.config("injected_illcond", injected_ill);
        report.config("status", to_string(result.status));
        report.config("iterations", result.iterations);
        report.phase("setup", prec->setup_seconds());
        report.phase("solve", result.solve_seconds);
        report.write_if_enabled();

        return result.converged() ? 0 : 1;
    } catch (const vb::Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
