// Tour of the SIMT emulation layer: run the paper's warp kernels on the
// emulator, print their exact instruction/transaction counters, and show
// how the P100 device model turns counters into the GFLOPS numbers of the
// figure benchmarks.
//
//   $ ./examples/gpu_cost_model [block-size]
#include <cstdio>
#include <cstdlib>

#include "core/flops.hpp"
#include "core/simt_kernels.hpp"
#include "simt/device_model.hpp"

namespace vb = vbatch;

namespace {

void show(const char* name, const vb::simt::KernelStats& s,
          vb::size_type warps) {
    std::printf(
        "%-18s per warp: %6.1f fp  %6.1f shfl  %5.1f div  %5.1f ld-req  "
        "%6.1f ld-txn  %5.1f st-req  %6.1f st-repl  | useful flops %7.1f\n",
        name,
        static_cast<double>(s.fp_instructions) / warps,
        static_cast<double>(s.shuffle_instructions) / warps,
        static_cast<double>(s.div_instructions) / warps,
        static_cast<double>(s.load_requests) / warps,
        static_cast<double>(s.load_transactions) / warps,
        static_cast<double>(s.store_requests) / warps,
        static_cast<double>(s.store_replays) / warps,
        static_cast<double>(s.useful_flops) / warps);
}

}  // namespace

int main(int argc, char** argv) {
    const vb::index_type m = argc > 1 ? std::atoi(argv[1]) : 16;
    const vb::size_type sample = 8;
    const vb::size_type batch = 40000;
    std::printf("Emulating the batched kernels for block size %d "
                "(sample of %lld warps, extrapolated to %lld).\n\n",
                m, static_cast<long long>(sample),
                static_cast<long long>(batch));

    const auto layout = vb::core::make_uniform_layout(sample, m);
    const auto device = vb::simt::DeviceModel::p100();

    // --- LU factorization ---
    auto a = vb::core::BatchedMatrices<double>::random_diagonally_dominant(
        layout, 3);
    vb::core::BatchedPivots perm(layout);
    auto lu = vb::core::getrf_batch_simt(a, perm);
    show("LU getrf", lu.stats, sample);

    // --- GH factorization ---
    auto a2 = vb::core::BatchedMatrices<double>::random_diagonally_dominant(
        layout, 3);
    vb::core::BatchedPivots cperm(layout);
    auto gh = vb::core::gauss_huard_batch_simt(a2, cperm);
    show("GH factorize", gh.stats, sample);

    // --- solves ---
    auto b = vb::core::BatchedVectors<double>::random(layout, 5);
    auto trsv = vb::core::getrs_batch_simt(a, perm, b);
    show("LU getrs", trsv.stats, sample);
    auto b2 = vb::core::BatchedVectors<double>::random(layout, 5);
    auto ghs = vb::core::gauss_huard_solve_batch_simt(a2, cperm, b2);
    show("GH solve", ghs.stats, sample);

    // --- device model ---
    std::printf("\nP100 model estimates for a %lld-problem launch "
                "(double precision):\n",
                static_cast<long long>(batch));
    const auto project = [&](const char* name, vb::core::SimtBatchResult r,
                             double nominal_flops,
                             const vb::simt::WarpFootprint& fp) {
        r.total = batch;
        const auto stats = r.extrapolated();
        const double t = device.estimate_seconds(
            stats, batch, vb::simt::Precision::dp, fp);
        std::printf("  %-14s %8.1f us  ->  %7.1f GFLOPS\n", name, t * 1e6,
                    nominal_flops * batch / t * 1e-9);
    };
    const auto reg_fp = vb::simt::register_kernel_footprint(
        vb::warp_size, vb::simt::Precision::dp);
    vb::simt::WarpFootprint solve_fp;
    solve_fp.registers_per_lane = 20;
    project("LU getrf", lu, vb::core::getrf_flops(m), reg_fp);
    project("GH factorize", gh, vb::core::getrf_flops(m), reg_fp);
    project("LU getrs", trsv, vb::core::getrs_flops(m), solve_fp);
    project("GH solve", ghs, vb::core::getrs_flops(m), solve_fp);

    std::printf(
        "\nresident warps at the getrf footprint: %lld (register-limited "
        "occupancy; the reason these kernels run below peak bandwidth)\n",
        static_cast<long long>(device.resident_warps(reg_fp)));
    return 0;
}
