// Explore supervariable blocking and diagonal-block extraction on the
// synthetic matrix families: prints the detected block-size distribution
// for every bound the paper sweeps, and the extraction-strategy counters
// for balanced vs unbalanced sparsity.
//
//   $ ./examples/supervariable_explorer [suite-case-name]
//
// Without an argument it walks a representative matrix per family.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "blocking/extraction.hpp"
#include "blocking/supervariable.hpp"
#include "sparse/suite.hpp"

namespace vb = vbatch;

namespace {

void explore(const vb::sparse::SuiteCase& c) {
    const auto a = vb::sparse::build_suite_matrix(c);
    std::printf("\n=== %s (family %s): n = %d, nnz = %lld ===\n",
                c.name.c_str(), vb::sparse::family_name(c.family).c_str(),
                a.num_rows(), static_cast<long long>(a.nnz()));

    const auto sv = vb::blocking::find_supervariables(a);
    std::map<vb::index_type, vb::size_type> sv_hist;
    for (const auto s : sv) {
        ++sv_hist[s];
    }
    std::printf("supervariables: %lld total;",
                static_cast<long long>(sv.size()));
    for (const auto& [size, count] : sv_hist) {
        std::printf("  %lldx size %d", static_cast<long long>(count), size);
        if (sv_hist.size() > 6) {
            std::printf(" ...");
            break;
        }
    }
    std::printf("\n");

    for (const vb::index_type bound : {8, 12, 16, 24, 32}) {
        vb::blocking::BlockingOptions opts;
        opts.max_block_size = bound;
        const auto blocks = vb::blocking::supervariable_blocking(a, opts);
        vb::index_type max_b = 0;
        double mean = 0;
        for (const auto b : blocks) {
            max_b = std::max(max_b, b);
            mean += b;
        }
        mean /= static_cast<double>(blocks.size());
        std::printf(
            "  bound %2d -> %7lld blocks, mean size %5.2f, max %2d\n",
            bound, static_cast<long long>(blocks.size()), mean, max_b);
    }

    // Extraction strategies at bound 16.
    vb::blocking::BlockingOptions opts;
    opts.max_block_size = 16;
    const auto layout = vb::blocking::supervariable_layout(a, opts);
    const auto row = vb::blocking::extract_blocks_simt_row(a, layout);
    const auto shared = vb::blocking::extract_blocks_simt_shared(a, layout);
    std::printf(
        "  extraction (bound 16): row strategy %lld load reqs / %lld "
        "txns;  shared strategy %lld load reqs / %lld txns\n",
        static_cast<long long>(row.stats.load_requests),
        static_cast<long long>(row.stats.load_transactions),
        static_cast<long long>(shared.stats.load_requests),
        static_cast<long long>(shared.stats.load_transactions));
}

}  // namespace

int main(int argc, char** argv) {
    if (argc > 1) {
        explore(vb::sparse::suite_case_by_name(argv[1]));
        return 0;
    }
    std::printf("Supervariable blocking / extraction explorer. Pass a "
                "suite-case name to inspect a specific matrix.\n");
    std::string last_family;
    for (const auto& c : vb::sparse::suite_cases()) {
        const auto fam = vb::sparse::family_name(c.family);
        if (fam == last_family) {
            continue;  // one representative per family
        }
        last_family = fam;
        explore(c);
    }
    return 0;
}
