// Solver hot-path benchmark: measures the per-iteration building blocks
// of the Krylov solvers on a skewed-nnz matrix (the circuit-like stress
// case) and reports optimized-over-reference speedups.
//
//   spmv      nnz-balanced parallel CSR SpMV   vs serial row loop
//   blas1     fused CG update (one sweep)      vs blas::ref axpy+axpy+nrm2
//   apply     block-Jacobi lu_simd pooled      vs scalar serial lu apply
//   iteration all three chained                vs all three reference
//
// Only "speedup" series are emitted (ratios survive machine changes far
// better than absolute GFLOPS, so the regression gate can hold a committed
// baseline); the effective bandwidths behind them land in the metrics
// registry and ride along in the JSON's gauges section, which the gate
// ignores. The optimized and reference paths are verified to produce
// bitwise-identical vectors and the outcome is recorded in the config.
#include <cstdio>
#include <vector>

#include "base/random.hpp"
#include "base/thread_pool.hpp"
#include "base/timer.hpp"
#include "bench_common.hpp"
#include "blas/blas1_ref.hpp"
#include "blas/fused.hpp"
#include "obs/metrics.hpp"
#include "obs/roofline.hpp"
#include "precond/block_jacobi.hpp"
#include "sparse/generators.hpp"

namespace vb = vbatch;

namespace {

/// Serial textbook CSR SpMV -- the pre-optimization reference.
void spmv_ref(const vb::sparse::Csr<double>& a, const std::vector<double>& x,
              std::vector<double>& y) {
    const auto rp = a.row_ptrs();
    const auto ci = a.col_idxs();
    const auto va = a.values();
    const auto n = static_cast<std::size_t>(a.num_rows());
    for (std::size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (auto p = rp[i]; p < rp[i + 1]; ++p) {
            acc += va[static_cast<std::size_t>(p)] *
                   x[static_cast<std::size_t>(ci[static_cast<std::size_t>(p)])];
        }
        y[i] = acc;
    }
}

/// Median-free robust timing: best of `reps` full passes.
template <typename F>
double time_best(int reps, const F& f) {
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        vb::Timer t;
        f();
        best = std::min(best, t.seconds());
    }
    return best;
}

struct PhaseResult {
    double speedup;
    double opt_gbs;
    bool bitwise;
};

}  // namespace

int main() {
    const bool quick = vb::bench::quick_mode();
    const vb::index_type n = quick ? 20000 : 120000;
    const int reps = quick ? 10 : 30;

    // Arm the pool telemetry so the report's "pool" object carries real
    // utilization/imbalance numbers for this run.
    vb::ThreadPool::set_stats_enabled(true);

    std::printf("Solver hot-path speedups on a skewed-nnz circuit-like "
                "matrix (n = %d, pool = %u threads).\n",
                static_cast<int>(n), vb::ThreadPool::global().size());

    vb::obs::BenchReport report("solver_hotpath");
    report.config("quick", quick);
    report.config("n", n);
    report.config("threads",
                  static_cast<vb::size_type>(vb::ThreadPool::global().size()));

    const auto a = vb::sparse::circuit_like<double>(n, 5, 8, 400, 11);
    const auto nz = static_cast<std::size_t>(n);
    auto eng = vb::make_engine(99);
    std::vector<double> xvec(nz), p(nz), q(nz);
    for (std::size_t i = 0; i < nz; ++i) {
        xvec[i] = vb::uniform(eng, -1.0, 1.0);
        p[i] = vb::uniform(eng, -1.0, 1.0);
        q[i] = vb::uniform(eng, -1.0, 1.0);
    }

    // Preconditioners: scalar serial apply (reference) vs interleaved SIMD
    // groups dispatched over the pool (optimized). Identical factors.
    vb::precond::BlockJacobiOptions ref_opts;
    ref_opts.backend = vb::precond::BlockJacobiBackend::lu;
    ref_opts.max_block_size = 16;
    ref_opts.parallel = false;
    const vb::precond::BlockJacobi<double> prec_ref(a, ref_opts);
    vb::precond::BlockJacobiOptions opt_opts;
    opt_opts.backend = vb::precond::BlockJacobiBackend::lu_simd;
    opt_opts.max_block_size = 16;
    const vb::precond::BlockJacobi<double> prec_opt(a, opt_opts);

    // Canonical byte models (core/bytes.hpp) shared with the solvers'
    // roofline attribution. The apply model includes the streamed
    // factors, not just r/z, so its GB/s is comparable across backends.
    const double spmv_bytes = vb::core::spmv_bytes<double>(n, a.nnz());
    const double blas1_bytes = vb::core::fused_cg_update_bytes<double>(n);
    const double apply_bytes = prec_opt.apply_bytes();

    bool bitwise = true;
    vb::Timer total_timer;

    // -- SpMV ---------------------------------------------------------
    std::vector<double> y_ref(nz), y_opt(nz);
    spmv_ref(a, xvec, y_ref);
    a.spmv(std::span<const double>(xvec), std::span<double>(y_opt));
    bitwise = bitwise && y_ref == y_opt;
    const double t_spmv_ref =
        time_best(reps, [&] { spmv_ref(a, xvec, y_ref); });
    const double t_spmv_opt = time_best(reps, [&] {
        a.spmv(std::span<const double>(xvec), std::span<double>(y_opt));
    });
    const PhaseResult spmv{t_spmv_ref / t_spmv_opt,
                           spmv_bytes / t_spmv_opt * 1e-9, y_ref == y_opt};

    // -- Fused BLAS-1 (CG update chain) -------------------------------
    const double alpha = 0.125;
    std::vector<double> x1(xvec), r1(q), x2(xvec), r2(q);
    const double t_blas_ref = time_best(reps, [&] {
        vb::blas::ref::axpy(alpha, std::span<const double>(p),
                            std::span<double>(x1));
        vb::blas::ref::axpy(-alpha, std::span<const double>(q),
                            std::span<double>(r1));
        (void)vb::blas::ref::nrm2(std::span<const double>(r1));
    });
    const double t_blas_opt = time_best(reps, [&] {
        (void)vb::blas::fused_cg_update(alpha, std::span<const double>(p),
                                        std::span<const double>(q),
                                        std::span<double>(x2),
                                        std::span<double>(r2));
    });
    // Both paths ran `reps` identical updates from the same start, so the
    // iterates must agree bitwise (chunked == textbook order per element).
    bitwise = bitwise && x1 == x2 && r1 == r2;
    const PhaseResult blas1{t_blas_ref / t_blas_opt,
                            blas1_bytes / t_blas_opt * 1e-9,
                            x1 == x2 && r1 == r2};

    // -- Block-Jacobi apply -------------------------------------------
    std::vector<double> z_ref(nz), z_opt(nz);
    prec_ref.apply(std::span<const double>(q), std::span<double>(z_ref));
    prec_opt.apply(std::span<const double>(q), std::span<double>(z_opt));
    bitwise = bitwise && z_ref == z_opt;
    const double t_apply_ref = time_best(reps, [&] {
        prec_ref.apply(std::span<const double>(q), std::span<double>(z_ref));
    });
    const double t_apply_opt = time_best(reps, [&] {
        prec_opt.apply(std::span<const double>(q), std::span<double>(z_opt));
    });
    const PhaseResult apply{t_apply_ref / t_apply_opt,
                            apply_bytes / t_apply_opt * 1e-9,
                            z_ref == z_opt};

    // -- Whole iteration ----------------------------------------------
    const double t_iter_ref = time_best(reps, [&] {
        spmv_ref(a, xvec, y_ref);
        vb::blas::ref::axpy(alpha, std::span<const double>(p),
                            std::span<double>(x1));
        vb::blas::ref::axpy(-alpha, std::span<const double>(y_ref),
                            std::span<double>(r1));
        (void)vb::blas::ref::nrm2(std::span<const double>(r1));
        prec_ref.apply(std::span<const double>(r1), std::span<double>(z_ref));
    });
    const double t_iter_opt = time_best(reps, [&] {
        a.spmv(std::span<const double>(xvec), std::span<double>(y_opt));
        (void)vb::blas::fused_cg_update(alpha, std::span<const double>(p),
                                        std::span<const double>(y_opt),
                                        std::span<double>(x2),
                                        std::span<double>(r2));
        prec_opt.apply(std::span<const double>(r2), std::span<double>(z_opt));
    });
    const double iter_speedup = t_iter_ref / t_iter_opt;

    report.phase("measure", total_timer.seconds());

    auto& registry = vb::obs::Registry::global();
    registry.set("hotpath.spmv.gbs", spmv.opt_gbs);
    registry.set("hotpath.blas1.gbs", blas1.opt_gbs);
    registry.set("hotpath.apply.gbs", apply.opt_gbs);
    registry.set("hotpath.spmv.ref_seconds", t_spmv_ref);
    registry.set("hotpath.spmv.opt_seconds", t_spmv_opt);
    registry.set("hotpath.blas1.ref_seconds", t_blas_ref);
    registry.set("hotpath.blas1.opt_seconds", t_blas_opt);
    registry.set("hotpath.apply.ref_seconds", t_apply_ref);
    registry.set("hotpath.apply.opt_seconds", t_apply_opt);

    const double xn = static_cast<double>(n);
    report.series("hotpath/spmv", "n", {{xn, spmv.speedup}}, "speedup");
    report.series("hotpath/blas1", "n", {{xn, blas1.speedup}}, "speedup");
    report.series("hotpath/apply", "n", {{xn, apply.speedup}}, "speedup");
    report.series("hotpath/iteration", "n", {{xn, iter_speedup}}, "speedup");
    report.config("bitwise_identical", bitwise);

    // Roofline accounting against the host's measured (or overridden)
    // STREAM-triad ceiling: one traffic family + one series quartet per
    // measured hot-path kernel.
    const double roof = vb::obs::machine_roof_gbs();
    struct Family {
        const char* name;
        double flops;
        double bytes;
        double seconds;
    };
    const Family families[] = {
        {"spmv", 2.0 * static_cast<double>(a.nnz()), spmv_bytes,
         t_spmv_opt},
        {"blas1", 6.0 * static_cast<double>(nz), blas1_bytes, t_blas_opt},
        {"apply", prec_opt.apply_flops(), apply_bytes, t_apply_opt},
    };
    for (const auto& f : families) {
        registry.record_traffic(std::string("hotpath.") + f.name, f.flops,
                                f.bytes, f.seconds, 1, roof);
        const double gflops =
            f.seconds > 0.0 ? f.flops / f.seconds * 1e-9 : 0.0;
        const double gbs =
            f.seconds > 0.0 ? f.bytes / f.seconds * 1e-9 : 0.0;
        const double ai = f.bytes > 0.0 ? f.flops / f.bytes : 0.0;
        const std::string base = std::string("roofline/hotpath/") + f.name;
        report.series(base + "/gflops", "n", {{xn, gflops}}, "gflops");
        report.series(base + "/bandwidth_gbs", "n", {{xn, gbs}}, "gbs");
        report.series(base + "/arithmetic_intensity", "n", {{xn, ai}},
                      "flops_per_byte");
        report.series(base + "/fraction_of_roof", "n",
                      {{xn, roof > 0.0 ? gbs / roof : 0.0}}, "fraction");
    }

    vb::bench::print_header("Solver hot path | optimized / reference");
    std::printf("%12s  %10s  %12s\n", "phase", "speedup", "opt GB/s");
    std::printf("%12s  %10.2f  %12.2f\n", "spmv", spmv.speedup, spmv.opt_gbs);
    std::printf("%12s  %10.2f  %12.2f\n", "blas1", blas1.speedup,
                blas1.opt_gbs);
    std::printf("%12s  %10.2f  %12.2f\n", "apply", apply.speedup,
                apply.opt_gbs);
    std::printf("%12s  %10.2f  %12s\n", "iteration", iter_speedup, "-");
    std::printf("bitwise identical to reference: %s\n",
                bitwise ? "yes" : "NO");

    report.write_if_enabled();
    return bitwise ? 0 : 1;
}
