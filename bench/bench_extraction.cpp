// Fig. 3 / Section III.C reproduction: cost of the diagonal-block
// extraction strategies. The warp-cooperative shared-memory strategy
// trades a few extra issues on balanced matrices for coalesced access and
// bounded load imbalance on unbalanced (circuit-like) ones.
#include <cstdio>

#include "blocking/extraction.hpp"
#include "blocking/supervariable.hpp"
#include "bench_common.hpp"
#include "sparse/generators.hpp"

namespace vb = vbatch;

namespace {

void report(const char* name, const vb::sparse::Csr<double>& a) {
    vb::blocking::BlockingOptions opts;
    opts.max_block_size = 16;
    opts.detect_supervariables = false;
    const auto layout = vb::blocking::supervariable_layout(a, opts);

    const auto row = vb::blocking::extract_blocks_simt_row(a, layout);
    const auto shared = vb::blocking::extract_blocks_simt_shared(a, layout);
    const auto device = vb::simt::DeviceModel::p100();
    vb::simt::WarpFootprint fp;
    fp.registers_per_lane = 40;
    fp.shared_bytes = 16 * 16 * 8;
    const double t_row = device.estimate_seconds(
        row.stats, layout->count(), vb::simt::Precision::dp, fp);
    const double t_shared = device.estimate_seconds(
        shared.stats, layout->count(), vb::simt::Precision::dp, fp);

    std::printf("\n--- %s: n=%d nnz=%lld blocks=%lld ---\n", name,
                a.num_rows(), static_cast<long long>(a.nnz()),
                static_cast<long long>(layout->count()));
    std::printf("%-24s %16s %16s %14s %12s\n", "strategy", "load requests",
                "load transact.", "shared ops", "model time");
    std::printf("%-24s %16lld %16lld %14lld %10.1fus\n", "thread-per-row",
                static_cast<long long>(row.stats.load_requests),
                static_cast<long long>(row.stats.load_transactions),
                static_cast<long long>(row.stats.shared_accesses),
                t_row * 1e6);
    std::printf("%-24s %16lld %16lld %14lld %10.1fus\n",
                "shared-memory (paper)",
                static_cast<long long>(shared.stats.load_requests),
                static_cast<long long>(shared.stats.load_transactions),
                static_cast<long long>(shared.stats.shared_accesses),
                t_shared * 1e6);
    std::printf("row/shared model-time ratio: %.2fx\n", t_row / t_shared);
}

}  // namespace

int main() {
    std::printf("Reproduction of the Fig. 3 extraction study: "
                "thread-per-row vs warp-cooperative shared-memory "
                "extraction of the block-Jacobi diagonal blocks.\n");
    const vb::index_type scale = vb::bench::quick_mode() ? 1 : 4;
    report("balanced band (bw 4)",
           vb::sparse::random_banded<double>(4096 * scale, 4, 1.0, 3));
    report("balanced stencil (dof 4)",
           vb::sparse::laplacian_2d<double>(32 * scale, 32, 4, 5));
    report("unbalanced circuit",
           vb::sparse::circuit_like<double>(8000 * scale, 3, 12, 800, 7));
    report("extreme hubs",
           vb::sparse::circuit_like<double>(4000 * scale, 2, 6, 2500, 9));
    std::printf(
        "\nPaper's argument: assigning warp lanes to rows is defeated by "
        "unbalanced nonzero distributions; the cooperative strategy keeps "
        "accesses coalesced and bounds the imbalance to one warp.\n");
    return 0;
}
