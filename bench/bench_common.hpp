// Shared helpers for the figure/table reproduction benchmarks.
//
// The kernel benchmarks (Figs. 4-7) run the warp-emulated kernels on a
// size-representative sample of the batch (the instruction stream depends
// only on the block size), extrapolate the counters to the full batch and
// convert them to P100 wall time through simt::DeviceModel. The GFLOPS
// reported use the same nominal flop counts as the paper (core/flops.hpp).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/bytes.hpp"
#include "core/flops.hpp"
#include "core/gauss_huard.hpp"
#include "core/getrf.hpp"
#include "core/simt_kernels.hpp"
#include "core/trsv.hpp"
#include "obs/bench_report.hpp"
#include "obs/metrics.hpp"
#include "simt/device_model.hpp"

namespace vbatch::bench {

/// The four batched implementations compared in Section IV.
enum class Kernel { smallsize_lu, gauss_huard, gauss_huard_t, vendor };

inline const char* kernel_name(Kernel k) {
    switch (k) {
    case Kernel::smallsize_lu: return "Small-Size LU";
    case Kernel::gauss_huard: return "Gauss-Huard";
    case Kernel::gauss_huard_t: return "Gauss-Huard-T";
    case Kernel::vendor: return "cuBLAS-model LU";
    }
    return "?";
}

/// True when the harness should shrink sweeps (smoke-test mode).
inline bool quick_mode() {
    const char* q = std::getenv("VBATCH_QUICK");
    return q != nullptr && q[0] != '0';
}

/// Problems emulated per configuration; counters are extrapolated.
inline constexpr size_type emulation_sample = 16;

/// Modeled GFLOPS of a batched factorization.
template <typename T>
double getrf_gflops(Kernel kernel, index_type m, size_type batch,
                    const simt::DeviceModel& device) {
    const double flops = core::getrf_flops(m) * static_cast<double>(batch);
    if (kernel == Kernel::vendor) {
        const simt::VendorModel vendor(device);
        const double g = vendor.getrf_gflops(m, simt::precision_v<T>());
        return flops / vendor.estimate_seconds(flops, g, batch) * 1e-9;
    }
    const auto sample = std::min<size_type>(emulation_sample, batch);
    auto a = core::BatchedMatrices<T>::random_diagonally_dominant(
        core::make_uniform_layout(sample, m), 0xf1f1);
    core::BatchedPivots perm(a.layout_ptr());
    core::SimtBatchResult result;
    switch (kernel) {
    case Kernel::smallsize_lu:
        result = core::getrf_batch_simt(a, perm);
        break;
    case Kernel::gauss_huard:
        result = core::gauss_huard_batch_simt(a, perm,
                                              core::GhStorage::standard);
        break;
    case Kernel::gauss_huard_t:
        result = core::gauss_huard_batch_simt(a, perm,
                                              core::GhStorage::transposed);
        break;
    case Kernel::vendor:
        break;  // handled above
    }
    result.total = batch;  // extrapolate the sample to the full batch
    const auto stats = result.extrapolated();
    const auto footprint = simt::register_kernel_footprint(
        warp_size, simt::precision_v<T>());
    const double t = device.estimate_seconds(stats, batch,
                                             simt::precision_v<T>(),
                                             footprint);
    return flops / t * 1e-9;
}

/// Modeled GFLOPS of a batched solve (permute + triangular solves).
template <typename T>
double getrs_gflops(Kernel kernel, index_type m, size_type batch,
                    const simt::DeviceModel& device) {
    const double flops = core::getrs_flops(m) * static_cast<double>(batch);
    if (kernel == Kernel::vendor) {
        const simt::VendorModel vendor(device);
        const double g = vendor.getrs_gflops(m, simt::precision_v<T>());
        return flops / vendor.estimate_seconds(flops, g, batch) * 1e-9;
    }
    const auto sample = std::min<size_type>(emulation_sample, batch);
    auto a = core::BatchedMatrices<T>::random_diagonally_dominant(
        core::make_uniform_layout(sample, m), 0xf2f2);
    core::BatchedPivots perm(a.layout_ptr());
    auto b = core::BatchedVectors<T>::random(a.layout_ptr(), 0xf3f3);
    core::SimtBatchResult result;
    switch (kernel) {
    case Kernel::smallsize_lu:
        core::getrf_batch(a, perm);
        result = core::getrs_batch_simt(a, perm, b);
        break;
    case Kernel::gauss_huard:
        core::gauss_huard_batch(a, perm, core::GhStorage::standard);
        result = core::gauss_huard_solve_batch_simt(
            a, perm, b, core::GhStorage::standard);
        break;
    case Kernel::gauss_huard_t:
        core::gauss_huard_batch(a, perm, core::GhStorage::transposed);
        result = core::gauss_huard_solve_batch_simt(
            a, perm, b, core::GhStorage::transposed);
        break;
    case Kernel::vendor:
        break;
    }
    result.total = batch;
    const auto stats = result.extrapolated();
    // The solve streams the factors; only b lives in registers, so the
    // footprint is small and occupancy high.
    simt::WarpFootprint footprint;
    footprint.registers_per_lane =
        16 + 2 * static_cast<int>(sizeof(T) / 4);
    const double t = device.estimate_seconds(stats, batch,
                                             simt::precision_v<T>(),
                                             footprint);
    return flops / t * 1e-9;
}

// ---------------------------------------------------------------------
// Output formatting
// ---------------------------------------------------------------------

inline void print_header(const std::string& title) {
    std::printf("\n=== %s ===\n", title.c_str());
}

/// Print one table: rows indexed by `row_label` values, one column per
/// kernel series.
inline void print_series_table(const std::string& row_label,
                               const std::vector<double>& rows,
                               const std::vector<Kernel>& kernels,
                               const std::vector<std::vector<double>>& data) {
    std::printf("%12s", row_label.c_str());
    for (const auto k : kernels) {
        std::printf("  %16s", kernel_name(k));
    }
    std::printf("\n");
    for (std::size_t r = 0; r < rows.size(); ++r) {
        std::printf("%12.0f", rows[r]);
        for (std::size_t c = 0; c < kernels.size(); ++c) {
            std::printf("  %16.1f", data[c][r]);
        }
        std::printf("\n");
    }
}

/// Print one table *and* record it into the bench report: each kernel
/// column becomes one series named "<context>/<kernel>".
inline void emit_series_table(obs::BenchReport& report,
                              const std::string& context,
                              const std::string& row_label,
                              const std::vector<double>& rows,
                              const std::vector<Kernel>& kernels,
                              const std::vector<std::vector<double>>& data) {
    print_series_table(row_label, rows, kernels, data);
    for (std::size_t k = 0; k < kernels.size(); ++k) {
        std::vector<std::pair<double, double>> points;
        points.reserve(rows.size());
        for (std::size_t r = 0; r < rows.size(); ++r) {
            points.emplace_back(rows[r], data[k][r]);
        }
        report.series(context + "/" + kernel_name(kernels[k]), row_label,
                      std::move(points));
    }
}

/// Memory roof of the modeled device in GB/s (the emulated kernels'
/// fraction-of-roof is measured against this, not the host's triad).
inline double device_roof_gbs(const simt::DeviceModel& device) {
    return device.effective_bandwidth * 1e-9;
}

/// Emit the roofline companion series of one GFLOPS table: per kernel
/// column a bandwidth (GB/s), arithmetic-intensity (flop/byte) and
/// fraction-of-roof series derived from the canonical flop/byte models
/// of core/flops.hpp + core/bytes.hpp, plus one aggregated traffic
/// entry per kernel in the metrics registry so the bench JSON's
/// "traffic" object carries the same accounting. `flops_of`/`bytes_of`
/// map one row value (batch or block size) to the modeled totals of
/// that configuration. Series names are new in schema v2, so committed
/// baselines keyed on the v1 names keep matching.
template <typename FlopsFn, typename BytesFn>
void emit_roofline_series(obs::BenchReport& report,
                          const std::string& context,
                          const std::string& row_label,
                          const std::vector<double>& rows,
                          const std::vector<Kernel>& kernels,
                          const std::vector<std::vector<double>>& gflops,
                          FlopsFn&& flops_of, BytesFn&& bytes_of,
                          double roof_gbs) {
    auto& registry = obs::Registry::global();
    for (std::size_t k = 0; k < kernels.size(); ++k) {
        std::vector<std::pair<double, double>> gbs, ai, frac;
        double total_flops = 0.0;
        double total_bytes = 0.0;
        double total_seconds = 0.0;
        for (std::size_t r = 0; r < rows.size(); ++r) {
            const double flops = flops_of(rows[r]);
            const double bytes = bytes_of(rows[r]);
            const double intensity = bytes > 0.0 ? flops / bytes : 0.0;
            // GB/s = GFLOPS / (flops per byte).
            const double bw =
                intensity > 0.0 ? gflops[k][r] / intensity : 0.0;
            gbs.emplace_back(rows[r], bw);
            ai.emplace_back(rows[r], intensity);
            frac.emplace_back(rows[r],
                              roof_gbs > 0.0 ? bw / roof_gbs : 0.0);
            total_flops += flops;
            total_bytes += bytes;
            if (gflops[k][r] > 0.0) {
                total_seconds += flops / (gflops[k][r] * 1e9);
            }
        }
        const std::string base =
            "roofline/" + context + "/" + kernel_name(kernels[k]);
        report.series(base + "/bandwidth_gbs", row_label, std::move(gbs),
                      "gbs");
        report.series(base + "/arithmetic_intensity", row_label,
                      std::move(ai), "flops_per_byte");
        report.series(base + "/fraction_of_roof", row_label,
                      std::move(frac), "fraction");
        if (total_seconds > 0.0) {
            registry.record_traffic(context + "/" +
                                        kernel_name(kernels[k]),
                                    total_flops, total_bytes,
                                    total_seconds, 0, roof_gbs);
        }
    }
}

}  // namespace vbatch::bench
