// Section II.C trade-off: factorization-based block-Jacobi (LU setup +
// TRSV application) vs inversion-based (GJE setup + GEMV application).
// "Which strategy is preferrable depends on how often the preconditioner
// is applied and the size of the distinct diagonal blocks" -- this bench
// computes both modeled cost curves and the break-even application count.
#include "bench_common.hpp"
#include "core/gje_simt.hpp"

namespace vb = vbatch;

namespace {

struct Costs {
    double setup;
    double apply;
};

template <typename T>
Costs factorization_costs(vb::index_type m, vb::size_type batch,
                          const vb::simt::DeviceModel& device) {
    const auto layout =
        vb::core::make_uniform_layout(vb::bench::emulation_sample, m);
    auto a = vb::core::BatchedMatrices<T>::random_diagonally_dominant(
        layout, 1);
    vb::core::BatchedPivots perm(layout);
    auto f = vb::core::getrf_batch_simt(a, perm);
    auto b = vb::core::BatchedVectors<T>::random(layout, 2);
    auto s = vb::core::getrs_batch_simt(a, perm, b);
    f.total = batch;
    s.total = batch;
    const auto reg_fp = vb::simt::register_kernel_footprint(
        vb::warp_size, vb::simt::precision_v<T>());
    vb::simt::WarpFootprint solve_fp;
    solve_fp.registers_per_lane = 16 + 2 * static_cast<int>(sizeof(T) / 4);
    return {device.estimate_seconds(f.extrapolated(), batch,
                                    vb::simt::precision_v<T>(), reg_fp),
            device.estimate_seconds(s.extrapolated(), batch,
                                    vb::simt::precision_v<T>(), solve_fp)};
}

template <typename T>
Costs inversion_costs(vb::index_type m, vb::size_type batch,
                      const vb::simt::DeviceModel& device) {
    const auto layout =
        vb::core::make_uniform_layout(vb::bench::emulation_sample, m);
    auto a = vb::core::BatchedMatrices<T>::random_diagonally_dominant(
        layout, 1);
    auto f = vb::core::gauss_jordan_batch_simt(a);
    auto b = vb::core::BatchedVectors<T>::random(layout, 2);
    auto s = vb::core::apply_inverse_batch_simt(a, b);
    f.total = batch;
    s.total = batch;
    const auto reg_fp = vb::simt::register_kernel_footprint(
        vb::warp_size, vb::simt::precision_v<T>());
    vb::simt::WarpFootprint solve_fp;
    solve_fp.registers_per_lane = 16 + 2 * static_cast<int>(sizeof(T) / 4);
    return {device.estimate_seconds(f.extrapolated(), batch,
                                    vb::simt::precision_v<T>(), reg_fp),
            device.estimate_seconds(s.extrapolated(), batch,
                                    vb::simt::precision_v<T>(), solve_fp)};
}

}  // namespace

int main() {
    const auto device = vb::simt::DeviceModel::p100();
    const vb::size_type batch = 40000;
    std::printf(
        "Section II.C trade-off (modeled, double precision, batch %lld): "
        "LU setup + TRSV applications vs GJE inversion setup + GEMV "
        "applications.\n\n",
        static_cast<long long>(batch));
    std::printf("%6s %12s %12s %12s %12s %22s\n", "size", "LU setup",
                "TRSV apply", "GJE setup", "GEMV apply",
                "inversion wins after");
    for (const vb::index_type m : {4, 8, 16, 24, 32}) {
        const auto fac = factorization_costs<double>(m, batch, device);
        const auto inv = inversion_costs<double>(m, batch, device);
        // setup_f + k*apply_f = setup_i + k*apply_i -> break-even k.
        std::string crossover = "never";
        if (inv.apply < fac.apply) {
            const double k =
                (inv.setup - fac.setup) / (fac.apply - inv.apply);
            crossover = k <= 0 ? "always"
                               : (std::to_string(static_cast<long>(k) + 1) +
                                  " applications");
        }
        std::printf("%6d %10.1fus %10.1fus %10.1fus %10.1fus %22s\n", m,
                    fac.setup * 1e6, fac.apply * 1e6, inv.setup * 1e6,
                    inv.apply * 1e6, crossover.c_str());
    }
    std::printf(
        "\nThe paper's qualitative statement quantified: the GEMV "
        "application is always cheaper than the dependent TRSV, so with "
        "enough solver iterations inversion pays off. At m = 32 the 3x "
        "setup flops of GJE show up as the expected setup premium; below "
        "the warp size the *padded* LU update erases its flop advantage, "
        "another face of the Section IV.B padding effect. The "
        "factorization strategy remains the numerically safer route (no "
        "explicit inverse), which is why the paper builds on it.\n");
    return 0;
}
