// Ablation: sub-warp packing (2 problems/warp for m <= 16) vs the paper's
// one-problem-per-warp kernels. The paper explicitly does not implement
// this tuning ("we do not tune for specific sizes by handling multiple
// problems per warp", Section IV.B); this bench quantifies what it buys
// and explains the small-size gap between the open kernels and cuBLAS's
// tuned sizes.
#include "bench_common.hpp"
#include "core/packed_kernels.hpp"

namespace vb = vbatch;

namespace {

template <typename T>
void run_precision(const vb::simt::DeviceModel& device,
                   vb::size_type batch) {
    vb::bench::print_header(
        "Sub-warp packing ablation | " + vb::precision_name<T>() +
        " precision | batch " + std::to_string(batch) +
        " | GETRF / GETRS GFLOPS");
    std::printf("%6s %14s %14s %8s %14s %14s %8s\n", "size", "getrf 1/warp",
                "getrf 2/warp", "gain", "getrs 1/warp", "getrs 2/warp",
                "gain");
    const auto footprint = vb::simt::register_kernel_footprint(
        vb::warp_size, vb::simt::precision_v<T>());
    vb::simt::WarpFootprint solve_fp;
    solve_fp.registers_per_lane = 16 + 2 * static_cast<int>(sizeof(T) / 4);
    for (const vb::index_type m : {4, 8, 12, 16}) {
        const auto layout =
            vb::core::make_uniform_layout(vb::bench::emulation_sample, m);
        // --- factorization ---
        auto a1 = vb::core::BatchedMatrices<T>::random_diagonally_dominant(
            layout, 1);
        auto a2 = a1.clone();
        vb::core::BatchedPivots p1(layout), p2(layout);
        auto full = vb::core::getrf_batch_simt(a1, p1);
        auto packed = vb::core::getrf_batch_simt_packed(a2, p2);
        full.total = batch;
        packed.total = batch;
        // Packed warps: half as many warp-slots for the same batch.
        const double t_full = device.estimate_seconds(
            full.extrapolated(), batch, vb::simt::precision_v<T>(),
            footprint);
        const double t_packed = device.estimate_seconds(
            packed.extrapolated(), (batch + 1) / 2,
            vb::simt::precision_v<T>(), footprint);
        const double flops =
            vb::core::getrf_flops(m) * static_cast<double>(batch);
        // --- solve ---
        auto b1 = vb::core::BatchedVectors<T>::random(layout, 2);
        auto b2 = b1.clone();
        auto sfull = vb::core::getrs_batch_simt(a1, p1, b1);
        auto spacked = vb::core::getrs_batch_simt_packed(a1, p1, b2);
        sfull.total = batch;
        spacked.total = batch;
        const double ts_full = device.estimate_seconds(
            sfull.extrapolated(), batch, vb::simt::precision_v<T>(),
            solve_fp);
        const double ts_packed = device.estimate_seconds(
            spacked.extrapolated(), (batch + 1) / 2,
            vb::simt::precision_v<T>(), solve_fp);
        const double sflops =
            vb::core::getrs_flops(m) * static_cast<double>(batch);
        std::printf("%6d %14.1f %14.1f %7.2fx %14.1f %14.1f %7.2fx\n", m,
                    flops / t_full * 1e-9, flops / t_packed * 1e-9,
                    t_full / t_packed, sflops / ts_full * 1e-9,
                    sflops / ts_packed * 1e-9, ts_full / ts_packed);
    }
}

}  // namespace

int main() {
    const auto device = vb::simt::DeviceModel::p100();
    std::printf(
        "Sub-warp packing: two size<=16 problems per warp. Every issue "
        "slot serves both problems and the trailing update pads only to "
        "16 lanes, recovering the small-size throughput the padded "
        "one-problem-per-warp kernels give away.\n");
    run_precision<float>(device, 40000);
    run_precision<double>(device, 40000);
    return 0;
}
