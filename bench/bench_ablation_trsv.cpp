// Ablation (Fig. 2): lazy (DOT-based) vs eager (AXPY-based) triangular
// solves. The paper selects the eager variant for its trivially parallel
// AXPY and coalesced column reads; this bench shows both the host timing
// and the emulated-warp counter difference.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace vb = vbatch;

namespace {

template <typename T, vb::core::TrsvVariant variant>
void bm_getrs(benchmark::State& state) {
    const auto m = static_cast<vb::index_type>(state.range(0));
    const vb::size_type batch = 4096;
    const auto layout = vb::core::make_uniform_layout(batch, m);
    auto a = vb::core::BatchedMatrices<T>::random_diagonally_dominant(
        layout, 11);
    vb::core::BatchedPivots perm(layout);
    vb::core::getrf_batch(a, perm);
    const auto b0 = vb::core::BatchedVectors<T>::random(layout, 3);
    vb::core::TrsvOptions opts;
    opts.variant = variant;
    opts.parallel = false;
    for (auto _ : state) {
        state.PauseTiming();
        auto b = b0.clone();
        state.ResumeTiming();
        vb::core::getrs_batch(a, perm, b, opts);
        benchmark::DoNotOptimize(b.data());
    }
    state.counters["GFLOPS"] = benchmark::Counter(
        vb::core::getrs_flops(m) * static_cast<double>(batch) *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

void bm_eager_d(benchmark::State& s) {
    bm_getrs<double, vb::core::TrsvVariant::eager>(s);
}
void bm_lazy_d(benchmark::State& s) {
    bm_getrs<double, vb::core::TrsvVariant::lazy>(s);
}

BENCHMARK(bm_eager_d)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(bm_lazy_d)->Arg(8)->Arg(16)->Arg(32);

void print_warp_counters() {
    std::printf("\nEmulated-warp counters per 1000 solves (double, the "
                "quantities behind the eager choice):\n");
    std::printf("%6s %10s %18s %18s %14s\n", "size", "variant",
                "load transactions", "shuffle issues", "fp issues");
    for (const vb::index_type m : {8, 16, 32}) {
        const auto layout = vb::core::make_uniform_layout(1000, m);
        auto a =
            vb::core::BatchedMatrices<double>::random_diagonally_dominant(
                layout, 13);
        vb::core::BatchedPivots perm(layout);
        vb::core::getrf_batch(a, perm);
        for (const auto variant : {vb::core::TrsvVariant::eager,
                                   vb::core::TrsvVariant::lazy}) {
            auto b = vb::core::BatchedVectors<double>::random(layout, 5);
            const auto res = vb::core::getrs_batch_simt(a, perm, b, variant);
            std::printf("%6d %10s %18lld %18lld %14lld\n", m,
                        variant == vb::core::TrsvVariant::eager ? "eager"
                                                                : "lazy",
                        static_cast<long long>(res.stats.load_transactions),
                        static_cast<long long>(
                            res.stats.shuffle_instructions),
                        static_cast<long long>(res.stats.fp_instructions));
        }
    }
}

}  // namespace

int main(int argc, char** argv) {
    std::printf("Ablation of Fig. 2: lazy vs eager triangular solve "
                "variants.\n");
    print_warp_counters();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
