// Fig. 7 reproduction: performance of the batched triangular-solve
// routines as a function of the matrix size at a fixed batch of 40,000.
#include "bench_common.hpp"

namespace vb = vbatch;
using vb::bench::Kernel;

namespace {

template <typename T>
void run_precision(const vb::simt::DeviceModel& device, vb::size_type batch,
                   vb::obs::BenchReport& report) {
    const std::vector<Kernel> kernels = {
        Kernel::smallsize_lu, Kernel::gauss_huard, Kernel::gauss_huard_t,
        Kernel::vendor};
    vb::bench::print_header("Fig. 7 TRSV | batch " + std::to_string(batch) +
                            " | " + vb::precision_name<T>() +
                            " precision | GFLOPS vs matrix size");
    std::vector<double> rows;
    std::vector<std::vector<double>> data(kernels.size());
    const vb::index_type step = vb::bench::quick_mode() ? 7 : 1;
    vb::Timer precision_timer;
    for (vb::index_type m = 4; m <= 32; m += step) {
        rows.push_back(m);
        for (std::size_t k = 0; k < kernels.size(); ++k) {
            data[k].push_back(
                vb::bench::getrs_gflops<T>(kernels[k], m, batch, device));
        }
    }
    vb::bench::emit_series_table(report, vb::precision_name<T>(), "size",
                                 rows, kernels, data);
    const auto db = static_cast<double>(batch);
    vb::bench::emit_roofline_series(
        report, vb::precision_name<T>(), "size", rows, kernels, data,
        [db](double m) {
            return vb::core::getrs_flops(static_cast<vb::index_type>(m)) *
                   db;
        },
        [db](double m) {
            return vb::core::getrs_bytes<T>(static_cast<vb::index_type>(m)) *
                   db;
        },
        vb::bench::device_roof_gbs(device));
    report.phase(vb::precision_name<T>(), precision_timer.seconds());
}

}  // namespace

int main() {
    const auto device = vb::simt::DeviceModel::p100();
    const vb::size_type batch = 40000;
    std::printf("Reproduction of Fig. 7 (batched triangular solves vs "
                "matrix size, batch fixed to 40,000) on the %s cost "
                "model.\n",
                device.name().c_str());
    vb::obs::BenchReport report("fig7_trsv_size");
    report.config("device", device.name());
    report.config("batch", batch);
    report.config("quick", vb::bench::quick_mode());
    run_precision<float>(device, batch, report);
    run_precision<double>(device, batch, report);
    report.write_if_enabled();
    return 0;
}
