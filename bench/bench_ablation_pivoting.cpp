// Ablation (Fig. 1): implicit vs explicit partial pivoting in the batched
// LU. Host timings of both CPU variants (google-benchmark) -- the factors
// are bitwise identical, only the data movement differs -- plus the
// emulated-warp issue counts that explain why the GPU kernel profits.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace vb = vbatch;

namespace {

template <typename T>
void bm_getrf_implicit(benchmark::State& state) {
    const auto m = static_cast<vb::index_type>(state.range(0));
    const vb::size_type batch = 2048;
    const auto layout = vb::core::make_uniform_layout(batch, m);
    const auto source =
        vb::core::BatchedMatrices<T>::random_general(layout, 5);
    vb::core::BatchedPivots perm(layout);
    vb::core::GetrfOptions opts;
    opts.parallel = false;
    for (auto _ : state) {
        state.PauseTiming();
        auto a = source.clone();
        state.ResumeTiming();
        vb::core::getrf_batch(a, perm, opts);
        benchmark::DoNotOptimize(a.data());
    }
    state.counters["GFLOPS"] = benchmark::Counter(
        vb::core::getrf_flops(m) * static_cast<double>(batch) *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

template <typename T>
void bm_getrf_explicit(benchmark::State& state) {
    const auto m = static_cast<vb::index_type>(state.range(0));
    const vb::size_type batch = 2048;
    const auto layout = vb::core::make_uniform_layout(batch, m);
    const auto source =
        vb::core::BatchedMatrices<T>::random_general(layout, 5);
    vb::core::BatchedPivots perm(layout);
    vb::core::GetrfOptions opts;
    opts.parallel = false;
    for (auto _ : state) {
        state.PauseTiming();
        auto a = source.clone();
        state.ResumeTiming();
        vb::core::getrf_batch_explicit(a, perm, opts);
        benchmark::DoNotOptimize(a.data());
    }
    state.counters["GFLOPS"] = benchmark::Counter(
        vb::core::getrf_flops(m) * static_cast<double>(batch) *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

BENCHMARK(bm_getrf_implicit<double>)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(bm_getrf_explicit<double>)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(bm_getrf_implicit<float>)->Arg(16)->Arg(32);
BENCHMARK(bm_getrf_explicit<float>)->Arg(16)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
    std::printf(
        "Ablation of Fig. 1: implicit pivoting (the paper's kernel) vs "
        "explicit row swaps. Host timings below; on the emulated warp the "
        "explicit swap would serialize two lanes per step while 30 idle, "
        "which the implicit scheme removes entirely.\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
