// Ablation: pivoting-free factorization fast path (random butterfly
// transforms, core/rbt.hpp) vs the implicit-pivoting reference.
//
// Part 1 sweeps the Fig. 4 block sizes over every live ISA and both
// precisions and times the interleaved batched factorization
// single-threaded in three flavors:
//
//   implicit   getrf_interleaved, PivotPolicy::implicit (the baseline)
//   nopivot    getrf_interleaved, PivotPolicy::none (no pivot scan, no
//              row gather -- the kernel the butterflies unlock)
//   rbt_total  two-sided butterfly transform + nopivot (what the
//              block-Jacobi setup actually runs per block)
//
// Only speedup *ratios* are reported (they transfer across machines, so
// the committed baseline in bench/baselines/rbt.json can gate them):
// "rbt/getrf_speedup/native/f64" is the gated headline -- the pivot-free
// kernel must stay >= 1.15x implicit at m = 16 and 32 in double on the
// widest native ISA.
//
// Part 2 is the robustness leg: a block-Jacobi setup over an
// ill-conditioned-injected matrix must detect every graded block on the
// fast path, refactorize it with pivoting, and end with zero
// un-recovered degraded blocks while matching the pivoted apply to
// solver accuracy. Failures exit nonzero, so the CTest fixture that
// emits the JSON doubles as a correctness test.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "base/memory.hpp"
#include "base/timer.hpp"
#include "bench_common.hpp"
#include "blocking/extraction.hpp"
#include "blocking/supervariable.hpp"
#include "core/rbt.hpp"
#include "core/simd_dispatch.hpp"
#include "core/vectorized.hpp"
#include "precond/block_jacobi.hpp"
#include "sparse/generators.hpp"

namespace vb = vbatch;

namespace {

template <typename F>
double time_best(int reps, const F& f) {
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        const double t = f();
        best = std::min(best, t);
    }
    return best;
}

struct SweepPoint {
    double implicit_gflops = 0.0;
    double nopivot_gflops = 0.0;
    double rbt_total_gflops = 0.0;
    double speedup = 0.0;        // nopivot / implicit
    double speedup_total = 0.0;  // (transform + nopivot) / implicit
};

template <typename T>
SweepPoint sweep_one(vb::core::SimdIsa isa, vb::index_type m,
                     vb::size_type batch, int reps) {
    const auto layout = vb::core::make_uniform_layout(batch, m);
    const auto src =
        vb::core::BatchedMatrices<T>::random_diagonally_dominant(layout,
                                                                 0xb1f);
    std::vector<vb::size_type> idx(static_cast<std::size_t>(batch));
    for (vb::size_type i = 0; i < batch; ++i) {
        idx[static_cast<std::size_t>(i)] = i;
    }
    vb::core::InterleavedGroup<T> g(m, batch, isa);

    vb::core::VectorizedOptions implicit_opts;
    implicit_opts.isa = isa;
    implicit_opts.parallel = false;
    auto nopivot_opts = implicit_opts;
    nopivot_opts.pivot = vb::core::PivotPolicy::none;

    const double t_implicit = time_best(reps, [&] {
        g.pack_matrices(src, idx);
        vb::Timer t;
        (void)vb::core::getrf_interleaved(g, implicit_opts);
        return t.seconds();
    });
    const double t_nopivot = time_best(reps, [&] {
        g.pack_matrices(src, idx);
        vb::Timer t;
        (void)vb::core::getrf_interleaved(g, nopivot_opts);
        return t.seconds();
    });

    // The full fast-path cost: butterfly transform + pivot-free LU. The
    // coefficient tables are built once per setup (refresh reuses them),
    // so table generation stays outside the timed region.
    const vb::core::RbtTransforms<T> rbt(42, 2);
    // The chunk kernels use aligned vector loads on the coefficient
    // tables, exactly like the group's own buffers.
    const auto tab = g.lane_stride() *
                     static_cast<vb::size_type>(rbt.depth()) *
                     static_cast<vb::size_type>(m);
    vb::AlignedBuffer<T> ucoef(tab), vcoef(tab);
    rbt.fill_group_coeffs(idx, m, g.lanes(), g.lane_stride(), ucoef.data(),
                          vcoef.data());
    const double t_rbt_total = time_best(reps, [&] {
        g.pack_matrices(src, idx);
        vb::Timer t;
        for (vb::size_type c = 0; c < g.chunks(); ++c) {
            vb::core::rbt_transform_interleaved_chunk(
                g, ucoef.data(), vcoef.data(), rbt.depth(), c);
            vb::core::getrf_interleaved_chunk(g, c,
                                              vb::core::PivotPolicy::none);
        }
        return t.seconds();
    });

    const double flops =
        vb::core::getrf_flops(m) * static_cast<double>(batch);
    SweepPoint p;
    p.implicit_gflops = flops / t_implicit * 1e-9;
    p.nopivot_gflops = flops / t_nopivot * 1e-9;
    p.rbt_total_gflops = flops / t_rbt_total * 1e-9;
    p.speedup = t_implicit / t_nopivot;
    p.speedup_total = t_implicit / t_rbt_total;
    return p;
}

template <typename T>
void run_sweep(vb::obs::BenchReport& report, const char* prec,
               const std::vector<vb::index_type>& sizes,
               vb::size_type batch, int reps) {
    const auto native = vb::core::detect_simd_isa();
    for (const auto isa : vb::core::available_simd_isas()) {
        std::vector<std::pair<double, double>> speedup, speedup_total,
            gflops_implicit, gflops_nopivot;
        vb::bench::print_header(std::string("RBT ablation | ") + prec +
                                " | " + vb::core::simd_isa_name(isa));
        std::printf("%6s  %10s  %10s  %10s  %9s  %9s\n", "m", "implicit",
                    "nopivot", "rbt+lu", "speedup", "total");
        for (const auto m : sizes) {
            const auto p = sweep_one<T>(isa, m, batch, reps);
            const auto x = static_cast<double>(m);
            speedup.emplace_back(x, p.speedup);
            speedup_total.emplace_back(x, p.speedup_total);
            gflops_implicit.emplace_back(x, p.implicit_gflops);
            gflops_nopivot.emplace_back(x, p.nopivot_gflops);
            std::printf("%6d  %10.2f  %10.2f  %10.2f  %8.2fx  %8.2fx\n",
                        static_cast<int>(m), p.implicit_gflops,
                        p.nopivot_gflops, p.rbt_total_gflops, p.speedup,
                        p.speedup_total);
        }
        const std::string tag =
            std::string(vb::core::simd_isa_name(isa)) + "/" + prec;
        report.series("rbt/getrf_gflops_implicit/" + tag, "m",
                      std::move(gflops_implicit), "gflops");
        report.series("rbt/getrf_gflops_nopivot/" + tag, "m",
                      std::move(gflops_nopivot), "gflops");
        report.series("rbt/getrf_speedup_total/" + tag, "m",
                      std::move(speedup_total), "x");
        if (isa == native) {
            // The gated headline: machine-transferable ratio on the
            // widest native ISA (always present in the artifact, unlike
            // the per-ISA series on narrower hosts).
            report.series(std::string("rbt/getrf_speedup/native/") + prec,
                          "m", std::move(speedup), "x");
        } else {
            report.series("rbt/getrf_speedup/" + tag, "m",
                          std::move(speedup), "x");
        }
    }
}

/// Robustness + accuracy leg; returns true when every check holds.
bool run_robustness(vb::obs::BenchReport& report) {
    auto a = vb::sparse::laplacian_2d<double>(32, 32, 4);
    const auto layout = vb::blocking::supervariable_layout(
        a, vb::blocking::BlockingOptions{.max_block_size = 16});
    const vb::size_type injected =
        vb::blocking::make_blocks_illcond(a, *layout, 8);

    vb::precond::BlockJacobiOptions opts;
    opts.backend = vb::precond::BlockJacobiBackend::lu_simd;
    opts.max_block_size = 16;
    opts.layout = layout;
    const vb::precond::BlockJacobi<double> pivoted(a, opts);
    opts.pivot = vb::precond::PivotScheme::rbt;
    const vb::precond::BlockJacobi<double> fast(a, opts);

    const auto summary = fast.recovery_summary();
    const auto unrecovered = summary.fell_back + summary.singular;
    const auto n = static_cast<std::size_t>(a.num_rows());
    std::vector<double> r(n), z_ref(n), z(n);
    for (std::size_t i = 0; i < n; ++i) {
        r[i] = std::sin(0.1 * static_cast<double>(i)) + 0.5;
    }
    pivoted.apply(std::span<const double>(r), std::span<double>(z_ref));
    fast.apply(std::span<const double>(r), std::span<double>(z));
    double max_rel = 0.0;
    bool finite = true;
    for (std::size_t i = 0; i < n; ++i) {
        finite = finite && std::isfinite(z[i]);
        const double denom = std::max(1.0, std::abs(z_ref[i]));
        max_rel = std::max(max_rel, std::abs(z[i] - z_ref[i]) / denom);
    }
    // The fallback blocks solve through the pivoted scalar kernel and the
    // benign blocks through well-conditioned butterflies, so the apply
    // must track the pivoted reference to far better than solver
    // tolerance.
    const bool ok = unrecovered == 0 && fast.rbt_fellback() >= injected &&
                    fast.rbt_monitored() == fast.rbt_fellback() && finite &&
                    max_rel < 1e-8;

    vb::bench::print_header("RBT robustness | ill-conditioned injection");
    std::printf("blocks %lld  injected %lld  monitored %lld  fellback %lld"
                "  un-recovered %lld\n",
                static_cast<long long>(fast.num_blocks()),
                static_cast<long long>(injected),
                static_cast<long long>(fast.rbt_monitored()),
                static_cast<long long>(fast.rbt_fellback()),
                static_cast<long long>(unrecovered));
    std::printf("max rel deviation vs pivoted apply: %.3e  (%s)\n", max_rel,
                ok ? "ok" : "FAIL");

    report.config("robust_injected", injected);
    report.config("robust_monitored", fast.rbt_monitored());
    report.config("robust_fellback", fast.rbt_fellback());
    report.config("robust_unrecovered", unrecovered);
    report.config("robust_max_rel_deviation", max_rel);
    report.series("rbt/robustness/recovered_fraction", "injected",
                  {{static_cast<double>(injected),
                    injected > 0 && unrecovered == 0 ? 1.0 : 0.0}},
                  "fraction");
    return ok;
}

}  // namespace

int main() {
    const bool quick = vb::bench::quick_mode();
    const std::vector<vb::index_type> sizes =
        quick ? std::vector<vb::index_type>{16, 32}
              : std::vector<vb::index_type>{4, 8, 12, 16, 24, 32};
    const vb::size_type batch = quick ? 1024 : 4096;
    const int reps = quick ? 8 : 25;

    std::printf(
        "Pivoting-free fast path ablation: batched interleaved LU with "
        "implicit pivoting vs the pivot-free kernel (batch = %lld, "
        "single-threaded).\n",
        static_cast<long long>(batch));

    vb::obs::BenchReport report("rbt");
    report.config("quick", quick);
    report.config("batch", batch);
    report.config("native_isa", vb::core::simd_isa_name(
                                    vb::core::detect_simd_isa()));

    vb::Timer timer;
    run_sweep<double>(report, "f64", sizes, batch, reps);
    run_sweep<float>(report, "f32", sizes, batch, reps);
    report.phase("sweep", timer.seconds());

    vb::Timer robust_timer;
    const bool ok = run_robustness(report);
    report.phase("robustness", robust_timer.seconds());
    report.config("robust_ok", ok);

    report.write_if_enabled();
    return ok ? 0 : 1;
}
