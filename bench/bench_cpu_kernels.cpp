// Host-side throughput of the batched CPU backend (google-benchmark).
// These are the kernels the block-Jacobi preconditioner actually runs in
// this reproduction; they complement the modeled GPU numbers of the
// figure benches with real measured wall time.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/gauss_jordan.hpp"
#include "core/vendor.hpp"

namespace vb = vbatch;

namespace {

constexpr vb::size_type batch = 2048;

template <typename T>
vb::core::BatchedMatrices<T> fresh_batch(vb::index_type m) {
    return vb::core::BatchedMatrices<T>::random_diagonally_dominant(
        vb::core::make_uniform_layout(batch, m), 77);
}

template <typename T>
void bm_getrf(benchmark::State& state) {
    const auto m = static_cast<vb::index_type>(state.range(0));
    const auto source = fresh_batch<T>(m);
    vb::core::BatchedPivots perm(source.layout_ptr());
    vb::core::GetrfOptions opts;
    opts.parallel = false;
    for (auto _ : state) {
        state.PauseTiming();
        auto a = source.clone();
        state.ResumeTiming();
        vb::core::getrf_batch(a, perm, opts);
        benchmark::DoNotOptimize(a.data());
    }
    state.counters["GFLOPS"] = benchmark::Counter(
        vb::core::getrf_flops(m) * batch * state.iterations(),
        benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

template <typename T>
void bm_gauss_huard(benchmark::State& state) {
    const auto m = static_cast<vb::index_type>(state.range(0));
    const auto source = fresh_batch<T>(m);
    vb::core::BatchedPivots perm(source.layout_ptr());
    vb::core::GetrfOptions opts;
    opts.parallel = false;
    for (auto _ : state) {
        state.PauseTiming();
        auto a = source.clone();
        state.ResumeTiming();
        vb::core::gauss_huard_batch(a, perm, vb::core::GhStorage::standard,
                                    opts);
        benchmark::DoNotOptimize(a.data());
    }
    state.counters["GFLOPS"] = benchmark::Counter(
        vb::core::getrf_flops(m) * batch * state.iterations(),
        benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

template <typename T>
void bm_gauss_jordan(benchmark::State& state) {
    const auto m = static_cast<vb::index_type>(state.range(0));
    const auto source = fresh_batch<T>(m);
    vb::core::GetrfOptions opts;
    opts.parallel = false;
    for (auto _ : state) {
        state.PauseTiming();
        auto a = source.clone();
        state.ResumeTiming();
        vb::core::gauss_jordan_batch(a, opts);
        benchmark::DoNotOptimize(a.data());
    }
    state.counters["GFLOPS"] = benchmark::Counter(
        vb::core::invert_flops(m) * batch * state.iterations(),
        benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

template <typename T>
void bm_getrs(benchmark::State& state) {
    const auto m = static_cast<vb::index_type>(state.range(0));
    auto a = fresh_batch<T>(m);
    vb::core::BatchedPivots perm(a.layout_ptr());
    vb::core::getrf_batch(a, perm);
    const auto b0 = vb::core::BatchedVectors<T>::random(a.layout_ptr(), 9);
    vb::core::TrsvOptions opts;
    opts.parallel = false;
    for (auto _ : state) {
        state.PauseTiming();
        auto b = b0.clone();
        state.ResumeTiming();
        vb::core::getrs_batch(a, perm, b, opts);
        benchmark::DoNotOptimize(b.data());
    }
    state.counters["GFLOPS"] = benchmark::Counter(
        vb::core::getrs_flops(m) * batch * state.iterations(),
        benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

template <typename T>
void bm_vendor_getrf(benchmark::State& state) {
    const auto m = static_cast<vb::index_type>(state.range(0));
    const auto source = fresh_batch<T>(m);
    vb::core::BatchedPivots ipiv(source.layout_ptr());
    vb::core::GetrfOptions opts;
    opts.parallel = false;
    for (auto _ : state) {
        state.PauseTiming();
        auto a = source.clone();
        state.ResumeTiming();
        vb::core::vendor_getrf_batched(a, ipiv, opts);
        benchmark::DoNotOptimize(a.data());
    }
    state.counters["GFLOPS"] = benchmark::Counter(
        vb::core::getrf_flops(m) * batch * state.iterations(),
        benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

BENCHMARK(bm_getrf<double>)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(bm_getrf<float>)->Arg(16)->Arg(32);
BENCHMARK(bm_gauss_huard<double>)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(bm_gauss_jordan<double>)->Arg(16)->Arg(32);
BENCHMARK(bm_getrs<double>)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(bm_vendor_getrf<double>)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
