// Shared driver for the block-Jacobi solver study (Fig. 8, Fig. 9,
// Table I): IDR(4) on the 48-matrix synthetic suite, preconditioned by
// scalar Jacobi or block-Jacobi with a selectable factorization backend,
// right-hand side of all ones, zero initial guess, relative residual
// reduction of 1e-6, at most 10,000 iterations -- the exact protocol of
// Section IV.D.
#pragma once

#include <cstdio>
#include <optional>
#include <vector>

#include "bench_common.hpp"
#include "precond/config.hpp"
#include "solvers/config.hpp"
#include "sparse/suite.hpp"

namespace vbatch::bench {

struct StudyResult {
    bool converged = false;
    index_type iterations = 0;
    double setup_seconds = 0.0;
    double solve_seconds = 0.0;
    /// Per-phase attribution of the solve (spmv/precond/blas1/orth).
    solvers::PhaseSeconds phases;

    double total_seconds() const { return setup_seconds + solve_seconds; }
};

inline solvers::Config study_solver_config() {
    solvers::Config config;
    config.method = "idr";
    config.idr_s = 4;
    config.rel_tol = 1e-6;
    config.max_iters = quick_mode() ? 2000 : 10000;
    // Phase attribution + roofline traffic of every study solve flows
    // into the metrics registry and from there into the bench JSON.
    config.collect_phase_times = true;
    return config;
}

/// IDR(4) with a prepared preconditioner.
inline StudyResult run_idr(const sparse::Csr<double>& a,
                           const precond::Preconditioner<double>& prec,
                           double setup_seconds) {
    std::vector<double> b(static_cast<std::size_t>(a.num_rows()), 1.0);
    std::vector<double> x(b.size(), 0.0);
    static const auto solver =
        solvers::make_solver<double>(study_solver_config());
    const auto result = solver->solve(a, std::span<const double>(b),
                                      std::span<double>(x), prec);
    StudyResult out;
    out.converged = result.converged();
    out.iterations = result.iterations;
    out.setup_seconds = setup_seconds;
    out.solve_seconds = result.solve_seconds;
    out.phases = result.phase_seconds;
    return out;
}

/// IDR(4) + block-Jacobi(backend key, bound). The paper's protocol
/// reports "-" for a matrix whose setup breaks down, so the study runs
/// under the strict recovery policy and maps the throw to nullopt.
inline std::optional<StudyResult> run_block_jacobi(
    const sparse::Csr<double>& a, const std::string& backend,
    index_type bound) {
    try {
        precond::Config config;
        config.backend = backend;
        config.max_block_size = bound;
        config.recovery = precond::RecoveryPolicy::strict();
        const auto prec = precond::make_preconditioner<double>(a, config);
        return run_idr(a, *prec, prec->setup_seconds());
    } catch (const SingularMatrix&) {
        return std::nullopt;
    }
}

/// IDR(4) + scalar Jacobi. nullopt on a zero diagonal.
inline std::optional<StudyResult> run_scalar_jacobi(
    const sparse::Csr<double>& a) {
    try {
        precond::Config config;
        config.backend = "jacobi";
        const auto prec = precond::make_preconditioner<double>(a, config);
        return run_idr(a, *prec, prec->setup_seconds());
    } catch (const Error&) {
        return std::nullopt;
    }
}

/// The suite subset to run: everything, or every fourth case in quick mode.
inline std::vector<const sparse::SuiteCase*> study_cases() {
    std::vector<const sparse::SuiteCase*> cases;
    const auto& all = sparse::suite_cases();
    for (std::size_t i = 0; i < all.size(); ++i) {
        if (!quick_mode() || i % 4 == 0) {
            cases.push_back(&all[i]);
        }
    }
    return cases;
}

/// "iters (time s)" or "-" for a failed/non-converged run.
inline std::string study_cell(const std::optional<StudyResult>& r) {
    if (!r || !r->converged) {
        return "      -          ";
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%6d (%8.3fs)", r->iterations,
                  r->total_seconds());
    return buf;
}

}  // namespace vbatch::bench
