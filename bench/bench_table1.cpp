// Table I reproduction: iterations and total execution time of IDR(4)
// enhanced with scalar Jacobi and with LU-based block-Jacobi
// preconditioning for block-size bounds {8, 12, 16, 24, 32}, over the
// 48-matrix synthetic suite.
#include <map>

#include "solver_study.hpp"

namespace vb = vbatch;

int main() {
    std::printf(
        "Reproduction of Table I: IDR(4) iterations and runtime (setup + "
        "solve seconds) with scalar Jacobi and block-Jacobi(8/12/16/24/32), "
        "small-size LU backend.\n\n");
    const auto cases = vb::bench::study_cases();
    vb::obs::BenchReport report("table1");
    report.config("quick", vb::bench::quick_mode());
    report.config("cases", static_cast<vb::size_type>(cases.size()));

    std::printf("%-22s %9s %10s | %-17s %-17s %-17s %-17s %-17s %-17s\n",
                "matrix", "size", "nnz", "Jacobi", "BJ(8)", "BJ(12)",
                "BJ(16)", "BJ(24)", "BJ(32)");
    // One iterations-per-matrix series per preconditioner configuration.
    std::map<std::string, std::vector<std::pair<double, double>>> iters;
    double setup_total = 0.0, solve_total = 0.0;
    const auto tally = [&](const std::optional<vb::bench::StudyResult>& r,
                           const std::string& key, double id) {
        if (r && r->converged) {
            iters[key].emplace_back(id, static_cast<double>(r->iterations));
            setup_total += r->setup_seconds;
            solve_total += r->solve_seconds;
        }
    };
    for (const auto* c : cases) {
        const auto a = vb::sparse::build_suite_matrix(*c);
        const auto id = static_cast<double>(c->id);
        const auto jac = vb::bench::run_scalar_jacobi(a);
        tally(jac, "jacobi", id);
        std::printf("%-22s %9d %10lld |", c->name.c_str(), a.num_rows(),
                    static_cast<long long>(a.nnz()));
        std::printf(" %s", vb::bench::study_cell(jac).c_str());
        for (const vb::index_type bound : {8, 12, 16, 24, 32}) {
            const auto r = vb::bench::run_block_jacobi(
                a, "lu", bound);
            tally(r, "bj" + std::to_string(bound), id);
            std::printf(" %s", vb::bench::study_cell(r).c_str());
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    for (auto& [key, points] : iters) {
        report.series("iterations/" + key, "matrix_id", std::move(points),
                      "iterations");
    }
    report.phase("precond_setup", setup_total);
    report.phase("iterative_solve", solve_total);
    report.write_if_enabled();
    std::printf(
        "\nPaper's observation: larger block-size bounds typically improve "
        "both iteration count and time-to-solution; a few hard problems do "
        "not converge within the iteration budget ('-').\n");
    return 0;
}
