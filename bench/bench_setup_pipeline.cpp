// Setup-pipeline benchmark: quantifies the symbolic/numeric split of the
// block-Jacobi setup on the Fig. 9 suite (block bound 32).
//
//   fused    fused gather+factorize setup        vs phased extract-then-
//            (one pass, no batch container)         batched-LU pipeline
//   refresh  numeric-only re-setup on new values vs full first-time setup
//            (cached gather plan)                   (blocking + plan + numeric)
//
// The phased reference runs monitored (collecting per-block FactorInfo),
// exactly like the recovery-enabled setup it stands in for. Only
// "speedup" series are emitted (ratios transfer across machines, so the
// regression gate can hold a committed baseline). The refreshed factors
// are verified bitwise against a fresh setup on the same values and the
// outcome lands in the config.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "base/thread_pool.hpp"
#include "base/timer.hpp"
#include "bench_common.hpp"
#include "blocking/extraction.hpp"
#include "blocking/supervariable.hpp"
#include "core/getrf.hpp"
#include "obs/metrics.hpp"
#include "precond/block_jacobi.hpp"
#include "sparse/suite.hpp"

namespace vb = vbatch;

namespace {

/// Best of `reps` passes; setup costs jitter less than they skew.
template <typename F>
double time_best(int reps, const F& f) {
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        vb::Timer t;
        f();
        best = std::min(best, t.seconds());
    }
    return best;
}

/// Same pattern, different values: deterministic per-entry perturbation.
std::vector<double> perturbed_values(const vb::sparse::Csr<double>& a) {
    std::vector<double> v(a.values().begin(), a.values().end());
    for (std::size_t i = 0; i < v.size(); ++i) {
        v[i] *= 1.0 + 1e-3 * static_cast<double>(i % 7);
    }
    return v;
}

struct BackendTimes {
    double setup;
    double refresh;
    bool bitwise;
};

BackendTimes run_backend(const vb::sparse::Csr<double>& a,
                         const vb::sparse::Csr<double>& b,
                         vb::precond::BlockJacobiBackend backend,
                         vb::index_type block_bound, int reps) {
    vb::precond::BlockJacobiOptions opts;
    opts.backend = backend;
    opts.max_block_size = block_bound;
    const double t_setup = time_best(
        reps, [&] { vb::precond::BlockJacobi<double> prec(a, opts); });
    vb::precond::BlockJacobi<double> prec(a, opts);
    const double t_refresh = time_best(reps, [&] { prec.refresh(b); });

    // The refreshed preconditioner must equal a fresh one on `b`.
    vb::precond::BlockJacobiOptions fresh_opts = opts;
    fresh_opts.layout =
        std::make_shared<const vb::core::BatchLayout>(prec.layout());
    const vb::precond::BlockJacobi<double> fresh(b, fresh_opts);
    const auto nvals = static_cast<std::size_t>(prec.layout().total_values());
    const bool same =
        std::equal(prec.factors().data(), prec.factors().data() + nvals,
                   fresh.factors().data());
    return {t_setup, t_refresh, same};
}

}  // namespace

int main() {
    const bool quick = vb::bench::quick_mode();
    const int reps = quick ? 5 : 15;
    const vb::index_type block_bound = 32;

    // Arm the pool telemetry so the report's "pool" object carries real
    // utilization/imbalance numbers for the parallel setup passes.
    vb::ThreadPool::set_stats_enabled(true);

    std::printf("Block-Jacobi setup pipeline on the Fig. 9 suite "
                "(block bound %d, pool = %u threads).\n",
                static_cast<int>(block_bound),
                vb::ThreadPool::global().size());

    vb::obs::BenchReport report("setup_pipeline");
    report.config("quick", quick);
    report.config("block_bound", block_bound);
    report.config("threads",
                  static_cast<vb::size_type>(vb::ThreadPool::global().size()));

    const auto& cases = vb::sparse::suite_cases();
    bool bitwise = true;
    double min_refresh_speedup = 1e300;
    std::vector<std::pair<double, double>> fused_pts, lu_pts, simd_pts;
    vb::Timer total_timer;

    vb::bench::print_header(
        "Setup pipeline | fused vs phased, refresh vs setup");
    std::printf("%4s %-22s %10s %12s %12s %9s\n", "ID", "matrix", "fused x",
                "refresh lu", "refresh simd", "bitwise");

    for (std::size_t i = 0; i < cases.size(); ++i) {
        if (quick && i % 4 != 0) {
            continue;
        }
        const auto& c = cases[i];
        const auto a = vb::sparse::build_suite_matrix(c);
        auto b = a;
        b.set_values(std::span<const double>(perturbed_values(a)));

        // Phased reference: the pre-split pipeline. Supervariable
        // blocking, extraction into an intermediate batch container,
        // then a separate monitored batched factorization over it.
        vb::blocking::BlockingOptions bopts;
        bopts.max_block_size = block_bound;
        vb::core::GetrfOptions gopts;
        gopts.on_singular = vb::core::SingularPolicy::report;
        gopts.monitor = true;
        const double t_phased = time_best(reps, [&] {
            const auto layout = vb::blocking::supervariable_layout(a, bopts);
            auto blocks = vb::blocking::extract_diagonal_blocks(a, layout);
            vb::core::BatchedPivots pivots(blocks.layout_ptr());
            (void)vb::core::getrf_batch(blocks, pivots, gopts);
        });

        const auto lu = run_backend(
            a, b, vb::precond::BlockJacobiBackend::lu, block_bound, reps);
        const auto simd = run_backend(
            a, b, vb::precond::BlockJacobiBackend::lu_simd, block_bound,
            reps);
        bitwise = bitwise && lu.bitwise && simd.bitwise;

        const double fused_speedup = t_phased / lu.setup;
        const double lu_speedup = lu.setup / lu.refresh;
        const double simd_speedup = simd.setup / simd.refresh;
        min_refresh_speedup =
            std::min({min_refresh_speedup, lu_speedup, simd_speedup});
        const auto id = static_cast<double>(c.id);
        fused_pts.emplace_back(id, fused_speedup);
        lu_pts.emplace_back(id, lu_speedup);
        simd_pts.emplace_back(id, simd_speedup);
        std::printf("%4d %-22s %10.2f %12.2f %12.2f %9s\n", c.id,
                    c.name.c_str(), fused_speedup, lu_speedup, simd_speedup,
                    lu.bitwise && simd.bitwise ? "yes" : "NO");
    }

    report.phase("measure", total_timer.seconds());
    report.series("setup/fused_vs_phased", "matrix_id", std::move(fused_pts),
                  "speedup");
    report.series("setup/refresh/lu", "matrix_id", std::move(lu_pts),
                  "speedup");
    report.series("setup/refresh/lu-simd", "matrix_id", std::move(simd_pts),
                  "speedup");
    report.config("bitwise_identical", bitwise);
    vb::obs::Registry::global().set("setup_pipeline.min_refresh_speedup",
                                    min_refresh_speedup);

    std::printf("minimum refresh speedup over the suite: %.2fx\n",
                min_refresh_speedup);
    std::printf("refresh bitwise identical to fresh setup: %s\n",
                bitwise ? "yes" : "NO");

    report.write_if_enabled();
    return bitwise ? 0 : 1;
}
