// Fig. 5 reproduction: performance of batched factorization routines as a
// function of the matrix size at a fixed batch of 40,000 systems.
#include "bench_common.hpp"

namespace vb = vbatch;
using vb::bench::Kernel;

namespace {

template <typename T>
void run_precision(const vb::simt::DeviceModel& device,
                   vb::size_type batch) {
    const std::vector<Kernel> kernels = {
        Kernel::smallsize_lu, Kernel::gauss_huard, Kernel::gauss_huard_t,
        Kernel::vendor};
    vb::bench::print_header("Fig. 5 GETRF | batch " + std::to_string(batch) +
                            " | " + vb::precision_name<T>() +
                            " precision | GFLOPS vs matrix size");
    std::vector<double> rows;
    std::vector<std::vector<double>> data(kernels.size());
    const vb::index_type step = vb::bench::quick_mode() ? 7 : 1;
    for (vb::index_type m = 4; m <= 32; m += step) {
        rows.push_back(m);
        for (std::size_t k = 0; k < kernels.size(); ++k) {
            data[k].push_back(
                vb::bench::getrf_gflops<T>(kernels[k], m, batch, device));
        }
    }
    vb::bench::print_series_table("size", rows, kernels, data);
}

}  // namespace

int main() {
    const auto device = vb::simt::DeviceModel::p100();
    const vb::size_type batch = 40000;
    std::printf("Reproduction of Fig. 5 (batched GETRF vs matrix size, "
                "batch fixed to 40,000) on the %s cost model.\n",
                device.name().c_str());
    run_precision<float>(device, batch);
    run_precision<double>(device, batch);
    return 0;
}
