// Ablation (Section IV.B): the padded trailing update of the eager LU
// kernel vs the unpadded "optimize the kernels for any problem size"
// variant the paper announces as future work. Modeled GFLOPS across block
// sizes show the crossover moving: with the padding removed, the
// small-size LU matches or beats Gauss-Huard at every size.
#include "bench_common.hpp"

namespace vb = vbatch;

namespace {

template <typename T>
double lu_gflops(vb::index_type m, vb::size_type batch, bool padded,
                 const vb::simt::DeviceModel& device) {
    auto a = vb::core::BatchedMatrices<T>::random_diagonally_dominant(
        vb::core::make_uniform_layout(vb::bench::emulation_sample, m),
        0xabcd);
    vb::core::BatchedPivots perm(a.layout_ptr());
    vb::core::SimtBatchOptions opts;
    opts.padded_update = padded;
    auto result = vb::core::getrf_batch_simt(a, perm, opts);
    result.total = batch;
    const auto stats = result.extrapolated();
    const auto footprint = vb::simt::register_kernel_footprint(
        vb::warp_size, vb::simt::precision_v<T>());
    const double flops =
        vb::core::getrf_flops(m) * static_cast<double>(batch);
    return flops / device.estimate_seconds(stats, batch,
                                           vb::simt::precision_v<T>(),
                                           footprint) *
           1e-9;
}

template <typename T>
void run_precision(const vb::simt::DeviceModel& device) {
    const vb::size_type batch = 40000;
    vb::bench::print_header(
        "Padding ablation | " + vb::precision_name<T>() +
        " precision | batch 40000 | GFLOPS vs matrix size");
    std::printf("%6s %14s %14s %14s %12s\n", "size", "LU padded",
                "LU unpadded", "Gauss-Huard", "crossover?");
    const vb::index_type step = vb::bench::quick_mode() ? 7 : 2;
    for (vb::index_type m = 4; m <= 32; m += step) {
        const double padded = lu_gflops<T>(m, batch, true, device);
        const double unpadded = lu_gflops<T>(m, batch, false, device);
        const double gh = vb::bench::getrf_gflops<T>(
            vb::bench::Kernel::gauss_huard, m, batch, device);
        std::printf("%6d %14.1f %14.1f %14.1f %12s\n", m, padded, unpadded,
                    gh, padded < gh && unpadded >= gh ? "fixed" : "");
    }
}

}  // namespace

int main() {
    const auto device = vb::simt::DeviceModel::p100();
    std::printf(
        "Ablation of the padded trailing update (Section IV.B): the "
        "production kernel pads every problem to 32x32; removing the "
        "padding recovers the GFLOPS the eager LU loses to Gauss-Huard "
        "below the crossover size.\n");
    run_precision<float>(device);
    run_precision<double>(device);
    return 0;
}
