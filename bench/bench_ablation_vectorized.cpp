// Ablation: measured (host wall-clock) throughput of the interleaved SIMD
// batch kernels against the scalar implicit-pivoting reference, single
// thread, uniform batches of sizes 4..32.
//
// Two numbers are reported per ISA:
//   kernel - persistent interleaved group (the block-Jacobi steady state:
//            pack once, factorize/solve many times)
//   e2e    - drop-in driver including pack + compute + unpack
//
// The acceptance bar of the vectorized backend is kernel >= 2x scalar on
// the 8x8 and 16x16 uniform batches (in the widest available ISA).
#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/vectorized.hpp"

namespace vb = vbatch;

namespace {

constexpr int warmup_reps = 1;

/// Best-of-N wall time of op(), with per-rep reset() excluded.
template <typename Reset, typename Op>
double best_seconds(int reps, Reset&& reset, Op&& op) {
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < reps + warmup_reps; ++rep) {
        reset();
        vb::Timer timer;
        op();
        const double t = timer.seconds();
        if (rep >= warmup_reps) {
            best = std::min(best, t);
        }
    }
    return best;
}

struct Row {
    vb::index_type m = 0;
    double scalar_getrf = 0.0;  // GFLOPS
    double scalar_getrs = 0.0;
    std::vector<double> kernel_getrf;  // per ISA
    std::vector<double> e2e_getrf;
    std::vector<double> kernel_getrs;
};

template <typename T>
void run_precision(vb::obs::BenchReport& report) {
    const auto isas = vb::core::available_simd_isas();
    const vb::size_type nb = vb::bench::quick_mode() ? 4096 : 32768;
    const int reps = vb::bench::quick_mode() ? 3 : 7;
    const std::string prec = vb::precision_name<T>();

    vb::bench::print_header(
        "Vectorized-backend ablation | " + prec + " precision | " +
        std::to_string(static_cast<long long>(nb)) +
        " uniform blocks | single thread | GFLOPS");
    std::printf("%4s  %14s", "m", "scalar getrf");
    for (const auto isa : isas) {
        std::printf("  %11s-krn  %11s-e2e", vb::core::simd_isa_name(isa),
                    vb::core::simd_isa_name(isa));
    }
    std::printf("\n");

    std::vector<Row> rows;
    for (const vb::index_type m : {4, 8, 16, 32}) {
        Row row;
        row.m = m;
        const auto layout = vb::core::make_uniform_layout(nb, m);
        const auto pristine =
            vb::core::BatchedMatrices<T>::random_diagonally_dominant(
                layout, 0xabc0 + static_cast<std::uint64_t>(m));
        const double factor_flops =
            vb::core::getrf_flops(m) * static_cast<double>(nb);
        const double solve_flops =
            vb::core::getrs_flops(m) * static_cast<double>(nb);

        // --- scalar reference, single thread ---
        auto work = pristine.clone();
        vb::core::BatchedPivots perm(layout);
        vb::core::GetrfOptions sopts;
        sopts.parallel = false;
        row.scalar_getrf =
            factor_flops /
            best_seconds(
                reps, [&] { work = pristine.clone(); },
                [&] { vb::core::getrf_batch(work, perm, sopts); }) *
            1e-9;

        const auto rhs0 = vb::core::BatchedVectors<T>::random(layout, 99);
        auto rhs = rhs0.clone();
        vb::core::TrsvOptions topts;
        topts.parallel = false;
        row.scalar_getrs =
            solve_flops /
            best_seconds(
                reps, [&] { rhs = rhs0.clone(); },
                [&] { vb::core::getrs_batch(work, perm, rhs, topts); }) *
            1e-9;

        // --- vectorized, per ISA ---
        for (const auto isa : isas) {
            vb::core::VectorizedOptions vopts;
            vopts.isa = isa;
            vopts.parallel = false;

            // Persistent-group kernel timing: the packed values are reset
            // from a pristine interleaved copy outside the timed section.
            const auto idx = [&] {
                std::vector<vb::size_type> v(static_cast<std::size_t>(nb));
                for (vb::size_type i = 0; i < nb; ++i) {
                    v[static_cast<std::size_t>(i)] = i;
                }
                return v;
            }();
            vb::core::InterleavedGroup<T> master(m, nb, isa);
            master.pack_matrices(pristine, idx);
            vb::core::InterleavedGroup<T> g(m, nb, isa);
            const vb::size_type nvals =
                static_cast<vb::size_type>(m) * m * g.lane_stride();
            row.kernel_getrf.push_back(
                factor_flops /
                best_seconds(
                    reps,
                    [&] {
                        std::copy(master.values(), master.values() + nvals,
                                  g.values());
                    },
                    [&] { vb::core::getrf_interleaved(g, vopts); }) *
                1e-9);

            auto batch = pristine.clone();
            vb::core::BatchedPivots vperm(layout);
            row.e2e_getrf.push_back(
                factor_flops /
                best_seconds(
                    reps, [&] { batch = pristine.clone(); },
                    [&] {
                        vb::core::getrf_batch_vectorized(batch, vperm,
                                                         vopts);
                    }) *
                1e-9);

            vb::core::InterleavedVectors<T> b(m, nb, isa);
            vb::core::InterleavedVectors<T> bmaster(m, nb, isa);
            bmaster.pack(rhs0, idx);
            const vb::size_type nrhs =
                static_cast<vb::size_type>(m) * b.lane_stride();
            row.kernel_getrs.push_back(
                solve_flops /
                best_seconds(
                    reps,
                    [&] {
                        std::copy(bmaster.values(),
                                  bmaster.values() + nrhs, b.values());
                    },
                    [&] { vb::core::getrs_interleaved(g, b, vopts); }) *
                1e-9);
        }

        std::printf("%4d  %14.2f", row.m, row.scalar_getrf);
        for (std::size_t k = 0; k < isas.size(); ++k) {
            std::printf("  %15.2f  %15.2f", row.kernel_getrf[k],
                        row.e2e_getrf[k]);
        }
        std::printf("\n");
        rows.push_back(std::move(row));
    }

    // Speedup summary + acceptance check against the widest ISA.
    std::printf("\n%4s  %s kernel speedup over scalar getrf:\n", "",
                prec.c_str());
    bool meets_bar = true;
    const std::size_t widest = isas.size() - 1;
    for (const auto& row : rows) {
        const double speedup = row.kernel_getrf[widest] / row.scalar_getrf;
        std::printf("%4d  %6.2fx (%s)\n", row.m, speedup,
                    vb::core::simd_isa_name(isas[widest]));
        if ((row.m == 8 || row.m == 16) && speedup < 2.0) {
            meets_bar = false;
        }
    }
    if (isas.size() > 1) {
        std::printf("  8x8/16x16 >= 2x bar: %s\n",
                    meets_bar ? "PASS" : "FAIL");
    }

    // Series: x = block size, y = GFLOPS.
    const auto record = [&](const std::string& series,
                            double Row::* scalar_field) {
        std::vector<std::pair<double, double>> pts;
        for (const auto& row : rows) {
            pts.emplace_back(static_cast<double>(row.m),
                             row.*scalar_field);
        }
        report.series(prec + "/" + series, "m", std::move(pts));
    };
    record("getrf/scalar", &Row::scalar_getrf);
    record("getrs/scalar", &Row::scalar_getrs);
    for (std::size_t k = 0; k < isas.size(); ++k) {
        const std::string isa = vb::core::simd_isa_name(isas[k]);
        std::vector<std::pair<double, double>> krn, e2e, slv;
        for (const auto& row : rows) {
            krn.emplace_back(static_cast<double>(row.m),
                             row.kernel_getrf[k]);
            e2e.emplace_back(static_cast<double>(row.m), row.e2e_getrf[k]);
            slv.emplace_back(static_cast<double>(row.m),
                             row.kernel_getrs[k]);
        }
        report.series(prec + "/getrf/" + isa + "/kernel", "m",
                      std::move(krn));
        report.series(prec + "/getrf/" + isa + "/e2e", "m", std::move(e2e));
        report.series(prec + "/getrs/" + isa + "/kernel", "m",
                      std::move(slv));
    }
}

}  // namespace

int main() {
    std::printf("Vectorized batch-kernel ablation (measured host time, "
                "dispatch default: %s).\n",
                vb::core::simd_isa_name(vb::core::detect_simd_isa()));
    vb::obs::BenchReport report("ablation_vectorized");
    report.config("quick", vb::bench::quick_mode());
    report.config("dispatch",
                  vb::core::simd_isa_name(vb::core::detect_simd_isa()));
    // Record which ISA series this run emits: baselines recorded on
    // narrower machines stay comparable (the regression checker matches
    // series by name and tolerates extra series in the current run).
    std::string isa_csv;
    for (const auto isa : vb::core::available_simd_isas()) {
        if (!isa_csv.empty()) {
            isa_csv += ",";
        }
        isa_csv += vb::core::simd_isa_name(isa);
    }
    report.config("isas", isa_csv);
    vb::Timer tf;
    run_precision<float>(report);
    report.phase("float", tf.seconds());
    vb::Timer td;
    run_precision<double>(report);
    report.phase("double", td.seconds());
    report.write_if_enabled();
    return 0;
}
