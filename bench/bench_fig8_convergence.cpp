// Fig. 8 reproduction: convergence comparison of IDR(4) with block-Jacobi
// preconditioning based on LU vs Gauss-Huard factorization. Both methods
// are numerically stable but round differently; the histogram shows the
// per-problem iteration overhead of whichever method lost, for every
// block-size bound in {8, 12, 16, 24, 32}.
#include <algorithm>

#include "base/statistics.hpp"
#include "obs/metrics.hpp"
#include "solver_study.hpp"

namespace vb = vbatch;

int main() {
    std::printf(
        "Reproduction of Fig. 8: IDR(4) iteration overhead, LU-based vs "
        "GH-based block-Jacobi.\n"
        "Negative bins: LU gave the better preconditioner (GH needed more "
        "iterations); positive bins: GH was better.\n");
    const auto cases = vb::bench::study_cases();
    vb::obs::BenchReport report("fig8_convergence");
    report.config("quick", vb::bench::quick_mode());
    report.config("cases", static_cast<vb::size_type>(cases.size()));

    vb::size_type lu_better = 0, gh_better = 0, tied = 0;
    for (const vb::index_type bound : {8, 12, 16, 24, 32}) {
        vb::Timer bound_timer;
        // Bin width 20%, with one bin centered on zero so the "identical
        // iteration count" mass is its own bar like the paper's figure.
        vb::Histogram hist(-110.0, 110.0, 11);
        for (const auto* c : cases) {
            const auto a = vb::sparse::build_suite_matrix(*c);
            const auto lu = vb::bench::run_block_jacobi(
                a, "lu", bound);
            const auto gh = vb::bench::run_block_jacobi(
                a, "gh", bound);
            if (!lu || !gh || !lu->converged || !gh->converged) {
                continue;  // the paper drops non-converging cases too
            }
            const double il = lu->iterations;
            const double ig = gh->iterations;
            // Signed overhead of the losing method relative to the winner:
            // negative = LU won (paper's left-of-center), positive = GH.
            const double overhead = (il - ig) / std::min(il, ig) * 100.0;
            hist.add(overhead);
            if (il < ig) {
                ++lu_better;
            } else if (ig < il) {
                ++gh_better;
            } else {
                ++tied;
            }
        }
        std::printf("\n--- block size bound %d ---\n", bound);
        std::printf("%s", hist.render().c_str());
        std::vector<std::pair<double, double>> points;
        for (int b = 0; b < hist.bins(); ++b) {
            points.emplace_back(hist.center(b),
                                static_cast<double>(hist.count(b)));
        }
        report.series("overhead_histogram/bound" + std::to_string(bound),
                      "overhead_percent", std::move(points), "count");
        // Percentiles of the signed-overhead distribution, reconstructed
        // from the histogram buckets (schema v2 percentile series).
        report.series(
            "overhead_percentiles/bound" + std::to_string(bound),
            "percentile",
            {{50.0, hist.percentile(50.0)},
             {95.0, hist.percentile(95.0)},
             {99.0, hist.percentile(99.0)}},
            "overhead_percent");
        report.phase("bound" + std::to_string(bound), bound_timer.seconds());
    }
    std::printf(
        "\nTotals over all bounds: LU better %lld | tied %lld | GH better "
        "%lld\n",
        static_cast<long long>(lu_better), static_cast<long long>(tied),
        static_cast<long long>(gh_better));
    auto& registry = vb::obs::Registry::global();
    registry.set("fig8.lu_better", static_cast<double>(lu_better));
    registry.set("fig8.gh_better", static_cast<double>(gh_better));
    registry.set("fig8.tied", static_cast<double>(tied));
    report.write_if_enabled();
    std::printf("Paper's observation: the histogram is concentrated at the "
                "center and roughly symmetric -- neither factorization is "
                "generally superior.\n");
    return 0;
}
