// Multi-tenant service benchmark: mixed traffic through service::Engine.
//
//   setup    cold per-tenant analysis (share_symbolic=false, every
//            session runs its own symbolic pass) vs warm shared-cache
//            setup (plan already resident: sessions pay numeric only).
//            The speedup series is the headline: the sharded plan cache
//            must make same-pattern tenant onboarding >= 2x cheaper.
//   traffic  many-small + few-large tenants served concurrently by
//            1..N client threads; per-request latency percentiles
//            (p50/p95/p99) and end-to-end throughput per client count.
//
// Only ratio series (setup speedup, cache hit rate) go into the
// committed baseline -- they transfer across machines. The absolute
// latency/throughput series stay in the artifact for trajectory
// tracking but are not gated.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "base/statistics.hpp"
#include "base/thread_pool.hpp"
#include "base/timer.hpp"
#include "bench_common.hpp"
#include "obs/bench_report.hpp"
#include "service/engine.hpp"
#include "sparse/generators.hpp"

namespace vb = vbatch;

namespace {

/// Same pattern, tenant-specific values: deterministic perturbation.
std::vector<double> tenant_values(const vb::sparse::Csr<double>& a,
                                  std::size_t tenant) {
    std::vector<double> v(a.values().begin(), a.values().end());
    for (std::size_t i = 0; i < v.size(); ++i) {
        v[i] *= 1.0 + 1e-3 * static_cast<double>((i + 3 * tenant) % 7);
    }
    return v;
}

vb::service::SessionOptions session_options() {
    vb::service::SessionOptions options;
    options.precond.backend = "lu";
    options.precond.max_block_size = 16;
    options.solver.method = "idr";
    options.solver.rel_tol = 1e-6;
    options.solver.max_iters = 2000;
    return options;
}

/// Onboarding scenario: the vectorized backend pays for a richer
/// symbolic analysis (lane-padded interleave plan) and factorizes
/// faster, so plan sharing saves the larger fraction of a cold setup.
vb::service::SessionOptions setup_options() {
    auto options = session_options();
    options.precond.backend = "lu-simd";
    options.precond.max_block_size = 8;
    return options;
}

/// One tenant's matrix: same (blocks, sizes, seed) => same pattern, so
/// same-kind tenants share one gather plan; values differ per tenant.
vb::sparse::Csr<double> tenant_matrix(const vb::sparse::Csr<double>& pattern,
                                      std::size_t tenant) {
    auto a = pattern;
    a.set_values(std::span<const double>(tenant_values(pattern, tenant)));
    return a;
}

}  // namespace

int main() {
    const bool quick = vb::bench::quick_mode();
    const auto threads = vb::ThreadPool::global().size();

    vb::obs::BenchReport report("service");
    report.config("quick", quick);
    report.config("threads", static_cast<vb::size_type>(threads));

    const auto small_pattern =
        vb::sparse::fem_block_matrix<double>(quick ? 24 : 64, 2, 8, 2, 0.25,
                                             /*seed=*/101);
    const auto large_pattern =
        vb::sparse::fem_block_matrix<double>(quick ? 48 : 160, 8, 16, 2,
                                             0.25, /*seed=*/202);
    // Setup scenario runs on a suite-sized pattern: on toy matrices the
    // per-session overheads (allocations, pool dispatch) drown the
    // symbolic-analysis savings the cache exists to capture.
    const auto setup_pattern =
        vb::sparse::fem_block_matrix<double>(2048, 2, 8, 4, 0.25,
                                             /*seed=*/303);
    report.config("small_rows", small_pattern.num_rows());
    report.config("large_rows", large_pattern.num_rows());
    report.config("setup_rows", setup_pattern.num_rows());

    // -- Scenario 1: tenant onboarding, cold vs warm plan cache --------
    const int reps = quick ? 5 : 8;
    const std::vector<int> tenant_counts =
        quick ? std::vector<int>{2, 4, 8} : std::vector<int>{2, 4, 8, 16, 32};

    vb::bench::print_header("Tenant setup | cold per-tenant vs warm cache");
    std::printf("%8s %14s %14s %9s %9s\n", "tenants", "cold (s)",
                "warm (s)", "speedup", "hit rate");

    // Tenant matrices are prepared outside the timed region (the CSR
    // copy + set_values cost is identical in both paths and would only
    // dilute the setup ratio) and moved into the engine.
    const auto onboard_seconds = [&](vb::service::Engine& engine,
                                     const vb::service::SessionOptions&
                                         options,
                                     int n) {
        double best = 1e300;
        for (int r = 0; r < reps; ++r) {
            std::vector<vb::sparse::Csr<double>> mats;
            mats.reserve(static_cast<std::size_t>(n));
            for (int t = 0; t < n; ++t) {
                mats.push_back(tenant_matrix(setup_pattern,
                                             static_cast<std::size_t>(t)));
            }
            vb::Timer timer;
            for (auto& m : mats) {
                auto session = engine.open_session(std::move(m), options);
            }
            best = std::min(best, timer.seconds());
        }
        return best;
    };

    std::vector<std::pair<double, double>> cold_pts, warm_pts, speedup_pts,
        hit_pts;
    double min_speedup = 1e300;
    for (const int n : tenant_counts) {
        // Cold: every session opts out of sharing and analyzes privately
        // (the pre-cache behavior: full symbolic + numeric per tenant).
        vb::service::Engine cold_engine;
        auto cold_options = setup_options();
        cold_options.share_symbolic = false;
        const double t_cold = onboard_seconds(cold_engine, cold_options, n);

        // Warm: one shared engine, plan resident after the first tenant;
        // the remaining sessions ride the cache and pay numeric only.
        vb::service::Engine warm_engine;
        {
            auto prewarm = warm_engine.open_session(
                tenant_matrix(setup_pattern, 0), setup_options());
        }
        const double t_warm = onboard_seconds(warm_engine, setup_options(), n);

        const auto cache = warm_engine.stats().cache;
        const double hit_rate =
            static_cast<double>(cache.reuses) /
            static_cast<double>(cache.builds + cache.reuses);
        const double speedup = t_cold / t_warm;
        min_speedup = std::min(min_speedup, speedup);
        const auto x = static_cast<double>(n);
        cold_pts.emplace_back(x, t_cold);
        warm_pts.emplace_back(x, t_warm);
        speedup_pts.emplace_back(x, speedup);
        hit_pts.emplace_back(x, hit_rate);
        std::printf("%8d %14.6f %14.6f %8.2fx %9.3f\n", n, t_cold, t_warm,
                    speedup, hit_rate);
    }
    report.series("setup_seconds/cold_per_tenant", "tenants",
                  std::move(cold_pts), "seconds");
    report.series("setup_seconds/warm_shared_cache", "tenants",
                  std::move(warm_pts), "seconds");
    report.series("setup_speedup/warm_vs_cold", "tenants",
                  std::move(speedup_pts), "x");
    report.series("cache_hit_rate/warm_setup", "tenants", std::move(hit_pts),
                  "ratio");
    report.config("min_warm_speedup", min_speedup);

    // -- Scenario 2: mixed traffic, 1..N client threads ----------------
    // Many small tenants plus a few large ones share one engine; each
    // client thread round-robins across every session, alternating pure
    // solves with values-update requests (the warm-start path).
    const int num_small = quick ? 4 : 8;
    const int num_large = 2;
    const int requests_per_client = quick ? 6 : 24;
    const std::vector<int> client_counts =
        threads > 1 ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2};
    report.config("small_tenants", static_cast<vb::size_type>(num_small));
    report.config("large_tenants", static_cast<vb::size_type>(num_large));
    report.config("requests_per_client",
                  static_cast<vb::size_type>(requests_per_client));

    vb::service::Engine engine;
    std::vector<vb::service::SessionPtr<double>> sessions;
    for (int t = 0; t < num_small; ++t) {
        sessions.push_back(engine.open_session(
            tenant_matrix(small_pattern, static_cast<std::size_t>(t)),
            session_options()));
    }
    for (int t = 0; t < num_large; ++t) {
        sessions.push_back(engine.open_session(
            tenant_matrix(large_pattern, static_cast<std::size_t>(t)),
            session_options()));
    }

    vb::bench::print_header("Mixed traffic | small+large tenants, async");
    std::printf("%8s %12s %12s %12s %12s\n", "clients", "p50 (s)", "p95 (s)",
                "p99 (s)", "req/s");

    std::vector<std::pair<double, double>> throughput_pts;
    for (const int clients : client_counts) {
        std::vector<std::vector<double>> latencies(
            static_cast<std::size_t>(clients));
        vb::Timer wall;
        std::vector<std::thread> workers;
        for (int c = 0; c < clients; ++c) {
            workers.emplace_back([&, c] {
                auto& lat = latencies[static_cast<std::size_t>(c)];
                for (int r = 0; r < requests_per_client; ++r) {
                    auto& session =
                        *sessions[static_cast<std::size_t>(c + r) %
                                  sessions.size()];
                    vb::service::SolveRequest<double> request;
                    if (r % 3 == 0) {
                        // Every third request also refreshes the values
                        // (numeric-only path through the cached plan).
                        request.values = tenant_values(
                            session.matrix(),
                            static_cast<std::size_t>(c + r));
                    }
                    request.rhs.assign(
                        static_cast<std::size_t>(session.num_rows()), 1.0);
                    vb::Timer t;
                    auto response = session.submit(std::move(request)).get();
                    if (response.accepted) {
                        lat.push_back(t.seconds());
                    }
                }
            });
        }
        for (auto& w : workers) {
            w.join();
        }
        const double elapsed = wall.seconds();

        std::vector<double> all;
        for (auto& lat : latencies) {
            all.insert(all.end(), lat.begin(), lat.end());
        }
        const double rate = static_cast<double>(all.size()) / elapsed;
        const auto s = vb::summarize(std::move(all));
        std::printf("%8d %12.6f %12.6f %12.6f %12.1f\n", clients, s.p50,
                    s.p95, s.p99, rate);
        report.series("latency_percentiles/clients_" +
                          std::to_string(clients),
                      "percentile", {{50.0, s.p50}, {95.0, s.p95},
                                     {99.0, s.p99}},
                      "seconds");
        throughput_pts.emplace_back(static_cast<double>(clients), rate);
    }
    report.series("throughput/requests_per_second", "clients",
                  std::move(throughput_pts), "req/s");

    engine.drain();
    const auto stats = engine.stats();
    std::printf("\nengine: %zu sessions, %zu submitted, %zu completed, "
                "%zu rejected, peak queue depth %zu\n",
                stats.sessions_opened, stats.submitted, stats.completed,
                stats.rejected, stats.peak_depth);
    std::printf("plan cache: %zu builds, %zu reuses, %zu entries resident\n",
                stats.cache.builds, stats.cache.reuses, stats.cache.entries);
    if (min_speedup < 2.0) {
        std::printf("WARNING: warm-cache setup speedup %.2fx below the 2x "
                    "target\n",
                    min_speedup);
    }

    report.write_if_enabled();
    return 0;
}
