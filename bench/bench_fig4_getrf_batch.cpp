// Fig. 4 reproduction: performance of batched factorization routines as a
// function of the batch size, for block sizes 16 and 32, in single and
// double precision. GFLOPS are modeled on the emulated P100 (DESIGN.md §5).
#include "bench_common.hpp"

namespace vb = vbatch;
using vb::bench::Kernel;

namespace {

template <typename T>
void run_precision(const vb::simt::DeviceModel& device,
                   vb::obs::BenchReport& report) {
    const std::vector<Kernel> kernels = {
        Kernel::smallsize_lu, Kernel::gauss_huard, Kernel::gauss_huard_t,
        Kernel::vendor};
    std::vector<vb::size_type> batches;
    if (vb::bench::quick_mode()) {
        batches = {2000, 10000, 40000};
    } else {
        batches = {1000, 2000, 5000, 10000, 15000, 20000,
                   25000, 30000, 35000, 40000};
    }
    vb::Timer precision_timer;
    for (const vb::index_type m : {16, 32}) {
        vb::bench::print_header(
            "Fig. 4 GETRF | block size " + std::to_string(m) + " | " +
            vb::precision_name<T>() + " precision | GFLOPS vs batch size");
        std::vector<double> rows;
        std::vector<std::vector<double>> data(kernels.size());
        for (const auto batch : batches) {
            rows.push_back(static_cast<double>(batch));
            for (std::size_t k = 0; k < kernels.size(); ++k) {
                data[k].push_back(vb::bench::getrf_gflops<T>(
                    kernels[k], m, batch, device));
            }
        }
        const std::string context =
            std::string(vb::precision_name<T>()) + "/m" + std::to_string(m);
        vb::bench::emit_series_table(report, context, "batch", rows,
                                     kernels, data);
        vb::bench::emit_roofline_series(
            report, context, "batch", rows, kernels, data,
            [m](double batch) { return vb::core::getrf_flops(m) * batch; },
            [m](double batch) {
                return vb::core::getrf_bytes<T>(m) * batch;
            },
            vb::bench::device_roof_gbs(device));
    }
    report.phase(vb::precision_name<T>(), precision_timer.seconds());
}

}  // namespace

int main() {
    const auto device = vb::simt::DeviceModel::p100();
    std::printf("Reproduction of Fig. 4 (batched GETRF vs batch size) on "
                "the %s cost model.\n",
                device.name().c_str());
    vb::obs::BenchReport report("fig4_getrf_batch");
    report.config("device", device.name());
    report.config("quick", vb::bench::quick_mode());
    report.config("emulation_sample", vb::bench::emulation_sample);
    run_precision<float>(device, report);
    run_precision<double>(device, report);
    report.write_if_enabled();
    return 0;
}
