// Fig. 9 reproduction: total execution time (preconditioner setup +
// iterative solve) of IDR(4) with block-Jacobi preconditioning based on
// LU, GH or GH-T factorization, supervariable blocking bound 32, over the
// 48-matrix suite. Matrices are printed sorted by total LU time, like the
// paper's x-axis ordering.
#include <algorithm>

#include "base/statistics.hpp"
#include "solver_study.hpp"

namespace vb = vbatch;

int main() {
    std::printf(
        "Reproduction of Fig. 9: total time (setup + solve) of IDR(4) "
        "with LU / GH / GH-T block-Jacobi, block bound 32.\n");
    const auto cases = vb::bench::study_cases();
    vb::obs::BenchReport report("fig9_total_time");
    report.config("quick", vb::bench::quick_mode());
    report.config("cases", static_cast<vb::size_type>(cases.size()));
    report.config("block_bound", vb::index_type{32});

    struct Row {
        const vb::sparse::SuiteCase* c;
        std::optional<vb::bench::StudyResult> lu, gh, ght;
        double sort_key;
    };
    std::vector<Row> rows;
    for (const auto* c : cases) {
        const auto a = vb::sparse::build_suite_matrix(*c);
        Row row{c, {}, {}, {}, 0.0};
        row.lu = vb::bench::run_block_jacobi(
            a, "lu", 32);
        row.gh = vb::bench::run_block_jacobi(
            a, "gh", 32);
        row.ght = vb::bench::run_block_jacobi(
            a, "gh-t", 32);
        row.sort_key = row.lu && row.lu->converged
                           ? row.lu->total_seconds()
                           : 1e30;
        rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) {
                  return a.sort_key < b.sort_key;
              });

    std::printf("%4s %-22s %-18s %-18s %-18s\n", "ID", "matrix",
                "LU  iters (time)", "GH  iters (time)", "GH-T iters (time)");
    vb::size_type skipped = 0;
    std::vector<std::pair<double, double>> lu_pts, gh_pts, ght_pts;
    std::vector<double> lu_lat, gh_lat, ght_lat;
    double setup_total = 0.0, solve_total = 0.0;
    vb::solvers::PhaseSeconds phase_totals;
    const auto tally = [&](const std::optional<vb::bench::StudyResult>& r,
                           std::vector<std::pair<double, double>>& pts,
                           std::vector<double>& lat, double id) {
        if (r && r->converged) {
            pts.emplace_back(id, r->total_seconds());
            lat.push_back(r->total_seconds());
            setup_total += r->setup_seconds;
            solve_total += r->solve_seconds;
            phase_totals.spmv += r->phases.spmv;
            phase_totals.precond += r->phases.precond;
            phase_totals.blas1 += r->phases.blas1;
            phase_totals.orth += r->phases.orth;
        }
    };
    for (const auto& row : rows) {
        const bool any =
            (row.lu && row.lu->converged) || (row.gh && row.gh->converged) ||
            (row.ght && row.ght->converged);
        if (!any) {
            ++skipped;
            continue;  // the paper omits non-converging matrices here
        }
        std::printf("%4d %-22s %s %s %s\n", row.c->id, row.c->name.c_str(),
                    vb::bench::study_cell(row.lu).c_str(),
                    vb::bench::study_cell(row.gh).c_str(),
                    vb::bench::study_cell(row.ght).c_str());
        const auto id = static_cast<double>(row.c->id);
        tally(row.lu, lu_pts, lu_lat, id);
        tally(row.gh, gh_pts, gh_lat, id);
        tally(row.ght, ght_pts, ght_lat, id);
    }
    report.series("total_seconds/lu", "matrix_id", std::move(lu_pts),
                  "seconds");
    report.series("total_seconds/gh", "matrix_id", std::move(gh_pts),
                  "seconds");
    report.series("total_seconds/gh-t", "matrix_id", std::move(ght_pts),
                  "seconds");
    // Latency percentiles over the converged cases of each backend.
    const auto percentiles = [&](const char* name,
                                 std::vector<double> lat) {
        const auto s = vb::summarize(std::move(lat));
        report.series(std::string("latency_percentiles/") + name,
                      "percentile",
                      {{50.0, s.p50}, {95.0, s.p95}, {99.0, s.p99}},
                      "seconds");
    };
    percentiles("lu", std::move(lu_lat));
    percentiles("gh", std::move(gh_lat));
    percentiles("gh-t", std::move(ght_lat));
    report.phase("precond_setup", setup_total);
    report.phase("iterative_solve", solve_total);
    report.phase("solve_spmv", phase_totals.spmv);
    report.phase("solve_precond", phase_totals.precond);
    report.phase("solve_blas1", phase_totals.blas1);
    report.phase("solve_orth", phase_totals.orth);
    report.config("skipped", skipped);
    std::printf("\n%lld matrices omitted (no configuration converged, as "
                "in the paper's four missing cases).\n",
                static_cast<long long>(skipped));
    std::printf("Paper's observation: the three backends mostly coincide; "
                "differences stem from rounding-driven iteration-count "
                "deltas.\n");
    report.write_if_enabled();
    return 0;
}
