// Fig. 9 reproduction: total execution time (preconditioner setup +
// iterative solve) of IDR(4) with block-Jacobi preconditioning based on
// LU, GH or GH-T factorization, supervariable blocking bound 32, over the
// 48-matrix suite. Matrices are printed sorted by total LU time, like the
// paper's x-axis ordering.
#include <algorithm>

#include "solver_study.hpp"

namespace vb = vbatch;

int main() {
    std::printf(
        "Reproduction of Fig. 9: total time (setup + solve) of IDR(4) "
        "with LU / GH / GH-T block-Jacobi, block bound 32.\n");
    const auto cases = vb::bench::study_cases();

    struct Row {
        const vb::sparse::SuiteCase* c;
        std::optional<vb::bench::StudyResult> lu, gh, ght;
        double sort_key;
    };
    std::vector<Row> rows;
    for (const auto* c : cases) {
        const auto a = vb::sparse::build_suite_matrix(*c);
        Row row{c, {}, {}, {}, 0.0};
        row.lu = vb::bench::run_block_jacobi(
            a, vb::precond::BlockJacobiBackend::lu, 32);
        row.gh = vb::bench::run_block_jacobi(
            a, vb::precond::BlockJacobiBackend::gauss_huard, 32);
        row.ght = vb::bench::run_block_jacobi(
            a, vb::precond::BlockJacobiBackend::gauss_huard_t, 32);
        row.sort_key = row.lu && row.lu->converged
                           ? row.lu->total_seconds()
                           : 1e30;
        rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) {
                  return a.sort_key < b.sort_key;
              });

    std::printf("%4s %-22s %-18s %-18s %-18s\n", "ID", "matrix",
                "LU  iters (time)", "GH  iters (time)", "GH-T iters (time)");
    vb::size_type skipped = 0;
    for (const auto& row : rows) {
        const bool any =
            (row.lu && row.lu->converged) || (row.gh && row.gh->converged) ||
            (row.ght && row.ght->converged);
        if (!any) {
            ++skipped;
            continue;  // the paper omits non-converging matrices here
        }
        std::printf("%4d %-22s %s %s %s\n", row.c->id, row.c->name.c_str(),
                    vb::bench::study_cell(row.lu).c_str(),
                    vb::bench::study_cell(row.gh).c_str(),
                    vb::bench::study_cell(row.ght).c_str());
    }
    std::printf("\n%lld matrices omitted (no configuration converged, as "
                "in the paper's four missing cases).\n",
                static_cast<long long>(skipped));
    std::printf("Paper's observation: the three backends mostly coincide; "
                "differences stem from rounding-driven iteration-count "
                "deltas.\n");
    return 0;
}
