// Extension bench (the paper's Section V future work): batched Cholesky
// vs batched LU for SPD blocks -- modeled P100 GFLOPS across sizes, using
// each method's own nominal flop count (m^3/3 vs 2m^3/3), plus the time
// ratio for the same job (factorizing one SPD batch).
#include "bench_common.hpp"
#include "core/cholesky.hpp"

namespace vb = vbatch;

namespace {

vb::core::BatchedMatrices<double> spd_batch(vb::core::BatchLayoutPtr layout,
                                            std::uint64_t seed) {
    auto batch =
        vb::core::BatchedMatrices<double>::random_diagonally_dominant(
            layout, seed);
    // Symmetrize: A := (A + A^T)/2; diagonal dominance then gives SPD.
    for (vb::size_type b = 0; b < batch.count(); ++b) {
        auto v = batch.view(b);
        for (vb::index_type j = 0; j < v.cols(); ++j) {
            for (vb::index_type i = 0; i < j; ++i) {
                const double s = 0.5 * (v(i, j) + v(j, i));
                v(i, j) = s;
                v(j, i) = s;
            }
            v(j, j) = std::abs(v(j, j));
        }
    }
    return batch;
}

}  // namespace

int main() {
    const auto device = vb::simt::DeviceModel::p100();
    const vb::size_type batch = 40000;
    std::printf(
        "Future-work extension: batched Cholesky vs batched LU on SPD "
        "blocks (double precision, batch %lld, modeled on %s).\n\n",
        static_cast<long long>(batch), device.name().c_str());
    std::printf("%6s %16s %16s %18s\n", "size", "Cholesky GFLOPS",
                "LU GFLOPS", "Chol/LU time ratio");
    const auto footprint = vb::simt::register_kernel_footprint(
        vb::warp_size, vb::simt::Precision::dp);
    const vb::index_type step = vb::bench::quick_mode() ? 8 : 4;
    for (vb::index_type m = 4; m <= 32; m += step) {
        auto a1 = spd_batch(
            vb::core::make_uniform_layout(vb::bench::emulation_sample, m),
            31);
        auto a2 = a1.clone();
        auto chol = vb::core::potrf_batch_simt(a1);
        vb::core::BatchedPivots perm(a2.layout_ptr());
        auto lu = vb::core::getrf_batch_simt(a2, perm);
        chol.total = batch;
        lu.total = batch;
        const double t_chol = device.estimate_seconds(
            chol.extrapolated(), batch, vb::simt::Precision::dp, footprint);
        const double t_lu = device.estimate_seconds(
            lu.extrapolated(), batch, vb::simt::Precision::dp, footprint);
        std::printf("%6d %16.1f %16.1f %18.2f\n", m,
                    vb::core::potrf_flops(m) * batch / t_chol * 1e-9,
                    vb::core::getrf_flops(m) * batch / t_lu * 1e-9,
                    t_chol / t_lu);
    }
    std::printf(
        "\nThe same factorization job costs roughly half the memory "
        "traffic and avoids the pivot reductions, so the time ratio sits "
        "well below 1 -- the payoff the paper anticipates for its "
        "Cholesky variant.\n");
    return 0;
}
