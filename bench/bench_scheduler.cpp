// Scheduler A/B study: the work-stealing pool against the legacy
// work-sharing pool, on the three axes the scheduler rewrite targets.
//
//   submit    fire-and-forget task throughput, fanned out from an
//             external thread (injection queue in both modes) and from
//             inside a worker (lock-free own-deque push vs. the shared
//             mutex queue).
//   nested    a parallel_for nested inside a pool task. Sharing runs it
//             inline-sequential; stealing splits it across idle
//             workers. The *overlap* series uses timed-wait bodies, so
//             it measures scheduler concurrency itself and transfers
//             across machines (including single-core CI runners); the
//             compute series is recorded for trajectory but is
//             hardware-bound and not gated.
//   service   mixed multi-tenant traffic through service::Engine under
//             both disciplines; the headline is the p99 ratio.
//
// Both modes run in one process on the global pool via set_mode (the
// workers service both disciplines; only publication changes), so the
// comparison shares threads, memory layout, and warmup. Only ratio
// series go into the committed baseline.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "base/statistics.hpp"
#include "base/thread_pool.hpp"
#include "base/timer.hpp"
#include "bench_common.hpp"
#include "obs/bench_report.hpp"
#include "service/engine.hpp"
#include "sparse/generators.hpp"

namespace vb = vbatch;

namespace {

const char* mode_name(vb::SchedMode mode) {
    return mode == vb::SchedMode::stealing ? "stealing" : "sharing";
}

/// Busy-wait for `target` to reach `want` (sub-millisecond completion
/// latencies would drown in a condvar round-trip).
void spin_until(const std::atomic<int>& target, int want) {
    while (target.load(std::memory_order_acquire) < want) {
        std::this_thread::yield();
    }
}

std::vector<double> tenant_values(const vb::sparse::Csr<double>& a,
                                  std::size_t tenant) {
    std::vector<double> v(a.values().begin(), a.values().end());
    for (std::size_t i = 0; i < v.size(); ++i) {
        v[i] *= 1.0 + 1e-3 * static_cast<double>((i + 3 * tenant) % 7);
    }
    return v;
}

}  // namespace

int main() {
    const bool quick = vb::bench::quick_mode();
    auto& pool = vb::ThreadPool::global();
    const auto threads = pool.size();

    vb::obs::BenchReport report("scheduler");
    report.config("quick", quick);
    report.config("threads", static_cast<vb::size_type>(threads));

    // -- Scenario 1: task-submit throughput ----------------------------
    const int num_tasks = quick ? 4000 : 40000;
    const int reps = quick ? 3 : 5;
    report.config("submit_tasks", static_cast<vb::size_type>(num_tasks));

    vb::bench::print_header("Submit throughput | no-op tasks");
    std::printf("%10s %16s %16s\n", "mode", "external (t/s)",
                "from-worker (t/s)");

    const auto submit_rate = [&](vb::SchedMode mode, bool from_worker) {
        pool.set_mode(mode);
        double best = 0.0;
        for (int r = 0; r < reps; ++r) {
            std::atomic<int> ran{0};
            const auto fan_out = [&] {
                for (int i = 0; i < num_tasks; ++i) {
                    pool.submit([&ran] {
                        ran.fetch_add(1, std::memory_order_release);
                    });
                }
            };
            vb::Timer timer;
            if (from_worker) {
                pool.submit(fan_out);
            } else {
                fan_out();
            }
            spin_until(ran, num_tasks);
            best = std::max(best,
                            static_cast<double>(num_tasks) / timer.seconds());
        }
        pool.set_mode(vb::SchedMode::stealing);
        return best;
    };

    for (const auto mode :
         {vb::SchedMode::sharing, vb::SchedMode::stealing}) {
        const double external = submit_rate(mode, false);
        const double from_worker = submit_rate(mode, true);
        std::printf("%10s %16.0f %16.0f\n", mode_name(mode), external,
                    from_worker);
        report.series(std::string("submit_throughput/external_") +
                          mode_name(mode),
                      "tasks", {{static_cast<double>(num_tasks), external}},
                      "tasks/s");
        report.series(std::string("submit_throughput/from_worker_") +
                          mode_name(mode),
                      "tasks",
                      {{static_cast<double>(num_tasks), from_worker}},
                      "tasks/s");
    }

    // -- Scenario 2: nested parallel_for inside a pool task ------------
    // Overlap series: each lane waits a fixed interval, so wall time
    // divides by however many lanes the scheduler actually overlaps --
    // a pure concurrency probe, independent of core count. Sharing
    // inlines the nested loop (wall = lanes * interval); stealing
    // spreads it (wall ~ interval).
    const int lanes = 8;
    const auto lane_wait = std::chrono::milliseconds(2);
    const int nested_reps = quick ? 5 : 9;
    report.config("nested_lanes", static_cast<vb::size_type>(lanes));

    const auto nested_wall = [&](vb::SchedMode mode, bool compute) {
        pool.set_mode(mode);
        double best = 1e300;
        for (int r = 0; r < nested_reps; ++r) {
            std::atomic<int> done{0};
            std::atomic<std::uint64_t> sink{0};
            vb::Timer timer;
            pool.submit([&] {
                pool.parallel_for(
                    0, lanes,
                    [&](vb::size_type i) {
                        if (compute) {
                            // FNV-ish churn, sized so one lane takes on
                            // the order of the wait interval.
                            std::uint64_t h =
                                1469598103934665603ull +
                                static_cast<std::uint64_t>(i);
                            for (int k = 0; k < 400000; ++k) {
                                h = (h ^ static_cast<std::uint64_t>(k)) *
                                    1099511628211ull;
                            }
                            sink.fetch_add(h, std::memory_order_relaxed);
                        } else {
                            const auto t0 =
                                std::chrono::steady_clock::now();
                            while (std::chrono::steady_clock::now() - t0 <
                                   lane_wait) {
                                std::this_thread::yield();
                            }
                        }
                    },
                    1);
                done.fetch_add(1, std::memory_order_release);
            });
            spin_until(done, 1);
            best = std::min(best, timer.seconds());
        }
        pool.set_mode(vb::SchedMode::stealing);
        return best;
    };

    vb::bench::print_header("Nested parallel_for | inside a pool task");
    std::printf("%10s %14s %14s\n", "series", "sharing (s)", "stealing (s)");
    const double overlap_sharing =
        nested_wall(vb::SchedMode::sharing, false);
    const double overlap_stealing =
        nested_wall(vb::SchedMode::stealing, false);
    const double compute_sharing = nested_wall(vb::SchedMode::sharing, true);
    const double compute_stealing =
        nested_wall(vb::SchedMode::stealing, true);
    const double overlap_speedup = overlap_sharing / overlap_stealing;
    const double compute_speedup = compute_sharing / compute_stealing;
    std::printf("%10s %14.6f %14.6f  (%.2fx)\n", "overlap", overlap_sharing,
                overlap_stealing, overlap_speedup);
    std::printf("%10s %14.6f %14.6f  (%.2fx)\n", "compute", compute_sharing,
                compute_stealing, compute_speedup);

    report.series("nested_wall/overlap_sharing", "lanes",
                  {{static_cast<double>(lanes), overlap_sharing}}, "seconds");
    report.series("nested_wall/overlap_stealing", "lanes",
                  {{static_cast<double>(lanes), overlap_stealing}},
                  "seconds");
    // The gated headline: nested work must actually reach idle workers.
    report.series("nested_speedup/overlap_stealing_vs_sharing", "lanes",
                  {{static_cast<double>(lanes), overlap_speedup}}, "x");
    // Hardware-bound (== 1 on a single-core machine): artifact only.
    report.series("nested_speedup/compute_stealing_vs_sharing", "lanes",
                  {{static_cast<double>(lanes), compute_speedup}}, "x");
    report.config("overlap_speedup", overlap_speedup);

    // -- Scenario 3: service mixed traffic -----------------------------
    const auto pattern = vb::sparse::fem_block_matrix<double>(
        quick ? 24 : 64, 2, 8, 2, 0.25, /*seed=*/101);
    const int num_tenants = 3;
    const int clients = 2;
    const int requests_per_client = quick ? 8 : 32;
    report.config("tenants", static_cast<vb::size_type>(num_tenants));
    report.config("clients", static_cast<vb::size_type>(clients));
    report.config("requests_per_client",
                  static_cast<vb::size_type>(requests_per_client));

    vb::service::SessionOptions soptions;
    soptions.precond.backend = "lu";
    soptions.precond.max_block_size = 16;
    soptions.solver.method = "idr";
    soptions.solver.rel_tol = 1e-6;
    soptions.solver.max_iters = 2000;

    vb::service::Engine engine;
    std::vector<vb::service::SessionPtr<double>> sessions;
    for (int t = 0; t < num_tenants; ++t) {
        auto a = pattern;
        a.set_values(std::span<const double>(
            tenant_values(pattern, static_cast<std::size_t>(t))));
        sessions.push_back(engine.open_session(std::move(a), soptions));
    }

    vb::bench::print_header("Service traffic | p50/p95/p99 per mode");
    std::printf("%10s %12s %12s %12s\n", "mode", "p50 (s)", "p95 (s)",
                "p99 (s)");

    const auto traffic_percentiles = [&](vb::SchedMode mode) {
        pool.set_mode(mode);
        std::vector<std::vector<double>> latencies(
            static_cast<std::size_t>(clients));
        std::vector<std::thread> drivers;
        for (int c = 0; c < clients; ++c) {
            drivers.emplace_back([&, c] {
                auto& lat = latencies[static_cast<std::size_t>(c)];
                for (int r = 0; r < requests_per_client; ++r) {
                    auto& session =
                        *sessions[static_cast<std::size_t>(c + r) %
                                  sessions.size()];
                    vb::service::SolveRequest<double> request;
                    if (r % 3 == 0) {
                        request.values = tenant_values(
                            session.matrix(),
                            static_cast<std::size_t>(c + r));
                    }
                    request.rhs.assign(
                        static_cast<std::size_t>(session.num_rows()), 1.0);
                    vb::Timer t;
                    auto response =
                        session.submit(std::move(request)).get();
                    if (response.accepted) {
                        lat.push_back(t.seconds());
                    }
                }
            });
        }
        for (auto& d : drivers) {
            d.join();
        }
        engine.drain();
        pool.set_mode(vb::SchedMode::stealing);
        std::vector<double> all;
        for (auto& lat : latencies) {
            all.insert(all.end(), lat.begin(), lat.end());
        }
        return vb::summarize(std::move(all));
    };

    // Warm both paths once (plans resident, pool pages touched).
    (void)traffic_percentiles(vb::SchedMode::stealing);
    const auto sharing = traffic_percentiles(vb::SchedMode::sharing);
    const auto stealing = traffic_percentiles(vb::SchedMode::stealing);
    std::printf("%10s %12.6f %12.6f %12.6f\n", "sharing", sharing.p50,
                sharing.p95, sharing.p99);
    std::printf("%10s %12.6f %12.6f %12.6f\n", "stealing", stealing.p50,
                stealing.p95, stealing.p99);

    for (const auto& [name, s] :
         {std::pair<const char*, const vb::Summary&>{"sharing", sharing},
          {"stealing", stealing}}) {
        report.series(std::string("service_latency/") + name, "percentile",
                      {{50.0, s.p50}, {95.0, s.p95}, {99.0, s.p99}},
                      "seconds");
    }
    // Gated: direct dispatch must not regress tail latency. > 1 means
    // stealing is faster at the tail.
    const double p99_ratio = sharing.p99 / stealing.p99;
    report.series("service_p99_ratio/sharing_vs_stealing", "clients",
                  {{static_cast<double>(clients), p99_ratio}}, "x");
    std::printf("\np99 ratio sharing/stealing: %.2fx\n", p99_ratio);

    if (overlap_speedup < 1.5) {
        std::printf("WARNING: nested overlap speedup %.2fx below the 1.5x "
                    "target\n",
                    overlap_speedup);
    }

    report.write_if_enabled();
    return 0;
}
