// Print the SIMD dispatch table of this build on this machine: which
// backends are compiled in / available, their lane widths per precision,
// and the level detect_simd_isa() resolves to (after the VBATCH_SIMD
// override). CI prints this into the job summary so every run records
// which dispatch level actually executed.
#include <cstdio>
#include <cstdlib>

#include "core/simd_dispatch.hpp"

int main() {
    using vbatch::core::SimdIsa;
    using vbatch::core::simd_isa_available;
    using vbatch::core::simd_isa_name;
    using vbatch::core::simd_lanes;

    const char* request = std::getenv("VBATCH_SIMD");
    std::printf("%-8s %14s %13s %10s\n", "isa", "lanes(double)",
                "lanes(float)", "available");
    for (const SimdIsa isa :
         {SimdIsa::scalar, SimdIsa::sse2, SimdIsa::avx2, SimdIsa::avx512,
          SimdIsa::neon}) {
        std::printf("%-8s %14d %13d %10s\n", simd_isa_name(isa),
                    simd_lanes<double>(isa), simd_lanes<float>(isa),
                    simd_isa_available(isa) ? "yes" : "no");
    }
    std::printf("VBATCH_SIMD=%s\n", request != nullptr ? request : "(unset)");
    std::printf("dispatch: %s\n",
                simd_isa_name(vbatch::core::detect_simd_isa()));
    return 0;
}
