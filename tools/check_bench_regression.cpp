// Bench regression gate: compare a fresh BENCH_<name>.json artifact
// against a committed baseline (bench/baselines/*.json) and fail when a
// metric regressed beyond the tolerance.
//
//   check_bench_regression <baseline.json> <current.json> [--tolerance F]
//
// Every series/point present in the baseline must exist in the current
// artifact (a vanished series is itself a failure: it usually means a
// benchmark was renamed without refreshing the baseline). Throughput
// units (GFLOPS, GB/s, ...) regress when the current value drops below
// (1 - F) * baseline; time-like units ("seconds", "ms") regress when it
// rises above (1 + F) * baseline. The default tolerance is deliberately
// loose (0.25) because quick-mode runs on shared CI machines are noisy;
// the gate exists to catch order-of-magnitude breakage (a kernel
// silently falling back to scalar), not single-digit drift.
//
// Exits 0 when everything holds, 1 on regression or mismatch, 2 on
// usage/parse errors.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace {

using vbatch::obs::JsonValue;

struct Point {
    double x;
    double y;
};

struct Series {
    std::string name;
    std::string unit;
    std::vector<Point> points;
};

JsonValue parse_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
        std::exit(2);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
        return vbatch::obs::parse_json(buf.str());
    } catch (const vbatch::obs::JsonError& e) {
        std::fprintf(stderr, "error: %s: %s\n", path.c_str(), e.what());
        std::exit(2);
    }
}

std::vector<Series> load_series(const std::string& path) {
    const JsonValue root = parse_file(path);
    const JsonValue* series = root.find("series");
    if (series == nullptr || !series->is_array()) {
        std::fprintf(stderr, "error: %s has no \"series\" array\n",
                     path.c_str());
        std::exit(2);
    }
    std::vector<Series> out;
    for (const auto& s : series->items) {
        const JsonValue* name = s.find("name");
        const JsonValue* unit = s.find("unit");
        const JsonValue* points = s.find("points");
        if (name == nullptr || !name->is_string() || points == nullptr ||
            !points->is_array()) {
            std::fprintf(stderr, "error: %s: malformed series entry\n",
                         path.c_str());
            std::exit(2);
        }
        Series entry;
        entry.name = name->string;
        entry.unit = unit != nullptr && unit->is_string() ? unit->string
                                                          : std::string();
        for (const auto& p : points->items) {
            if (!p.is_array() || p.items.size() != 2 ||
                !p.items[0].is_number() || !p.items[1].is_number()) {
                std::fprintf(stderr,
                             "error: %s: series \"%s\" has a malformed "
                             "point\n",
                             path.c_str(), entry.name.c_str());
                std::exit(2);
            }
            entry.points.push_back({p.items[0].number, p.items[1].number});
        }
        out.push_back(std::move(entry));
    }
    return out;
}

const Series* find_series(const std::vector<Series>& all,
                          const std::string& name) {
    for (const auto& s : all) {
        if (s.name == name) {
            return &s;
        }
    }
    return nullptr;
}

const Point* find_point(const Series& s, double x) {
    for (const auto& p : s.points) {
        if (std::abs(p.x - x) <= 1e-9 * std::max(1.0, std::abs(x))) {
            return &p;
        }
    }
    return nullptr;
}

/// Time-like units regress upward; everything else (GFLOPS, GB/s,
/// iterations/s) regresses downward.
bool lower_is_better(std::string_view unit) {
    return unit.find("second") != std::string_view::npos ||
           unit == "s" || unit == "ms" || unit == "us" || unit == "ns";
}

}  // namespace

int main(int argc, char** argv) {
    double tolerance = 0.25;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--tolerance") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: --tolerance needs a value\n");
                return 2;
            }
            tolerance = std::atof(argv[++i]);
        } else {
            paths.emplace_back(arg);
        }
    }
    if (paths.size() != 2 || tolerance < 0.0) {
        std::fprintf(stderr,
                     "usage: %s <baseline.json> <current.json> "
                     "[--tolerance F]\n",
                     argv[0]);
        return 2;
    }

    const auto baseline = load_series(paths[0]);
    const auto current = load_series(paths[1]);

    int failures = 0;
    int compared = 0;
    for (const auto& base : baseline) {
        const Series* cur = find_series(current, base.name);
        if (cur == nullptr) {
            std::fprintf(stderr, "FAIL %s: series missing from %s\n",
                         base.name.c_str(), paths[1].c_str());
            ++failures;
            continue;
        }
        const bool lower = lower_is_better(base.unit);
        for (const auto& bp : base.points) {
            const Point* cp = find_point(*cur, bp.x);
            if (cp == nullptr) {
                std::fprintf(stderr, "FAIL %s @ x=%g: point missing\n",
                             base.name.c_str(), bp.x);
                ++failures;
                continue;
            }
            ++compared;
            const double bound = lower ? bp.y * (1.0 + tolerance)
                                       : bp.y * (1.0 - tolerance);
            const bool bad = lower ? cp->y > bound : cp->y < bound;
            if (bad) {
                std::fprintf(stderr,
                             "FAIL %s @ x=%g: %g %s vs baseline %g "
                             "(tolerance %.0f%%)\n",
                             base.name.c_str(), bp.x, cp->y,
                             base.unit.c_str(), bp.y, tolerance * 100.0);
                ++failures;
            }
        }
    }

    if (failures == 0) {
        std::printf("OK: %d point(s) within %.0f%% of baseline %s\n",
                    compared, tolerance * 100.0, paths[0].c_str());
        return 0;
    }
    std::fprintf(stderr, "%d regression(s) against %s\n", failures,
                 paths[0].c_str());
    return 1;
}
