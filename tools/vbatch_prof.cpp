// vbatch_prof: offline analysis of the repository's observability
// artifacts -- BENCH_<name>.json reports and VBATCH_TRACE NDJSON
// streams.
//
//   vbatch_prof [--top N] [--trace trace.ndjson] BENCH_a.json ...
//   vbatch_prof --diff baseline.json current.json
//
// Report mode renders, per input document: the phase summary (sorted,
// with % of wall), the roofline table (GFLOPS, GB/s, arithmetic
// intensity, fraction of roof per traffic family), pool utilization and
// the hardware-counter regions. Trace mode aggregates regions by name.
// Diff mode compares two reports for regression triage.
//
// Exits 0 on success, 2 on usage/IO/parse errors. All rendering lives
// in obs/prof.hpp so tests can cover it with canned documents.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/prof.hpp"

namespace {

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
        std::exit(2);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

vbatch::obs::JsonValue parse_file(const std::string& path) {
    try {
        return vbatch::obs::parse_json(read_file(path));
    } catch (const vbatch::obs::JsonError& e) {
        std::fprintf(stderr, "error: %s: %s\n", path.c_str(), e.what());
        std::exit(2);
    }
}

int usage() {
    std::fprintf(
        stderr,
        "usage: vbatch_prof [--top N] [--trace FILE.ndjson] BENCH.json...\n"
        "       vbatch_prof --diff BASELINE.json CURRENT.json\n");
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    vbatch::obs::prof::Options opts;
    std::vector<std::string> reports;
    std::vector<std::string> traces;
    bool diff = false;

    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--top") {
            if (i + 1 >= argc) {
                return usage();
            }
            opts.top_n = std::atoi(argv[++i]);
            if (opts.top_n <= 0) {
                std::fprintf(stderr, "error: --top needs a positive N\n");
                return 2;
            }
        } else if (arg == "--trace") {
            if (i + 1 >= argc) {
                return usage();
            }
            traces.emplace_back(argv[++i]);
        } else if (arg == "--diff") {
            diff = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "error: unknown option %s\n", argv[i]);
            return usage();
        } else {
            reports.emplace_back(argv[i]);
        }
    }

    if (diff) {
        if (reports.size() != 2 || !traces.empty()) {
            return usage();
        }
        const auto base = parse_file(reports[0]);
        const auto current = parse_file(reports[1]);
        std::printf("%s",
                    vbatch::obs::prof::render_diff(base, current).c_str());
        return 0;
    }

    if (reports.empty() && traces.empty()) {
        return usage();
    }
    for (const auto& path : reports) {
        const auto doc = parse_file(path);
        std::printf("==> %s\n%s", path.c_str(),
                    vbatch::obs::prof::render_report(doc, opts).c_str());
    }
    for (const auto& path : traces) {
        std::printf("==> %s\n%s", path.c_str(),
                    vbatch::obs::prof::render_trace(read_file(path), opts)
                        .c_str());
    }
    return 0;
}
